"""The Telemetry facade: one object bundling registry + journal + clock.

Instrumented code (``nodefinder.wire``, ``nodefinder.live``,
``discovery.protocol``, ``fullnode``) takes a :class:`Telemetry` and
calls its ``record_*`` methods; the facade fans each observation out to
the metrics registry and — when one is attached — the structured
:class:`~repro.telemetry.journal.EventJournal`.  All timestamps come
from the single injected clock (OBS-CLOCK enforces that no wall clock is
read here), so metrics, spans, and journal share one timeline.

``NULL_TELEMETRY`` is the no-op default: a :class:`NullRegistry` and no
journal, so uninstrumented call sites pay only a method call.  There is
no mutable global registry — whoever owns a run constructs a Telemetry
and passes it down.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from repro.telemetry.journal import Event, EventJournal
from repro.telemetry.metrics import MetricsRegistry, NullRegistry
from repro.telemetry.profiler import NULL_PROFILER, Profiler
from repro.telemetry.spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.breaker import BreakerState
    from repro.simnet.node import DialResult
    from repro.telemetry.flightrecorder import FlightRecorder


def _hex(node_id: Optional[bytes]) -> Optional[str]:
    return node_id.hex() if node_id is not None else None


class Telemetry:
    """Metrics + spans + journal behind one injectable seam."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[EventJournal] = None,
        clock: Optional[Callable[[], float]] = None,
        shard: str = "",
        profiler: Optional[Profiler] = None,
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self.registry = (
            registry if registry is not None else MetricsRegistry(clock=self.clock)
        )
        self.journal = journal
        #: hot-path attribution sink; the shared no-op by default, so
        #: ``with telemetry.profiler.scope(...)`` costs next to nothing
        #: on unprofiled runs
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: crash flight recorder; when attached, every journaled event
        #: and started span tees into its per-shard ring buffers, and the
        #: crash-shaped record_* methods below trigger a dump
        self.recorder = recorder
        #: which crawl shard this facade instruments ("" = unsharded/whole
        #: crawler).  Every family a shard worker emits carries it as a
        #: label, so per-shard dashboards work off one shared registry;
        #: sum across shards with ``Counter.total()``.
        self.shard = shard
        registry_ = self.registry
        # -- harvest / dial funnel ------------------------------------------
        self.dials = registry_.counter(
            "nodefinder_dials_total",
            "harvest attempts by outcome and failing stage",
            ("outcome", "stage", "shard"),
        )
        self.dial_seconds = registry_.histogram(
            "nodefinder_dial_seconds",
            "wall time of one harvest attempt",
            ("shard",),
        )
        self.stage_seconds = registry_.histogram(
            "nodefinder_dial_stage_seconds",
            "wall time of one harvest stage",
            ("stage", "shard"),
        )
        self.retries = registry_.counter(
            "nodefinder_retries_total",
            "backoff waits before dial re-attempts",
            ("shard",),
        )
        self.breaker_transitions = registry_.counter(
            "nodefinder_breaker_transitions_total",
            "circuit-breaker state changes by destination state",
            ("to", "shard"),
        )
        self.subnet_breaker_transitions = registry_.counter(
            "nodefinder_subnet_breaker_transitions_total",
            "subnet-scope breaker state changes by destination state",
            ("to",),
        )
        # -- crawler scheduler ----------------------------------------------
        self.lookups = registry_.counter(
            "crawler_lookups_total", "discv4 lookup rounds completed"
        )
        self.scheduled_dials = registry_.counter(
            "crawler_scheduled_dials_total",
            "dials the crawler scheduled, by connection type",
            ("type", "shard"),
        )
        self.dial_failures = registry_.counter(
            "crawler_dial_failures_total",
            "dials that crashed (not failed) in-loop",
            ("shard",),
        )
        self.breaker_skips = registry_.counter(
            "crawler_breaker_skips_total",
            "dials skipped on an open breaker",
            ("shard",),
        )
        self.budget_dropped_dials = registry_.counter(
            "crawler_budget_dropped_dials_total",
            "dial candidates shed by the per-tick dial budget",
        )
        self.table_rejections = registry_.counter(
            "discovery_table_rejections_total",
            "routing-table admissions refused by a guard, by reason",
            ("reason",),
        )
        # -- sharded scheduler ----------------------------------------------
        self.shard_dials = registry_.counter(
            "crawler_shard_dials_total",
            "dials completed by each crawl shard, by connection type",
            ("shard", "type"),
        )
        self.shard_queue_depth = registry_.gauge(
            "crawler_shard_queue_depth",
            "dynamic-dial targets waiting in each shard's queue",
            ("shard",),
        )
        self.writer_folds = registry_.counter(
            "crawler_writer_folds_total",
            "dial results folded into the shared NodeDB by the writer",
        )
        self.writer_queue_depth = registry_.gauge(
            "crawler_writer_queue_depth",
            "dial results waiting in the NodeDB writer queue",
        )
        self.loop_crashes = registry_.counter(
            "crawler_loop_crashes_total", "supervised crawler loop crashes"
        )
        self.loop_restarts = registry_.counter(
            "crawler_loop_restarts_total", "supervised crawler loop restarts"
        )
        self.loop_deaths = registry_.counter(
            "crawler_loop_deaths_total",
            "crawler loops that died for good (restart budget spent)",
        )
        # -- live shard health ----------------------------------------------
        self.shard_loop_lag = registry_.gauge(
            "crawler_shard_loop_lag_seconds",
            "how far each shard's dial loop trails the world clock",
            ("shard",),
        )
        self.shard_open_breakers = registry_.gauge(
            "crawler_shard_open_breakers",
            "peer breakers currently OPEN as seen by each shard",
            ("shard",),
        )
        self.journal_backlog = registry_.gauge(
            "crawler_journal_backlog",
            "journal events written since the last flush, per shard",
            ("shard",),
        )
        # -- elastic sharding -----------------------------------------------
        self.reshard_segments = registry_.counter(
            "crawler_reshard_segments_total",
            "journal segments sealed by shard handoffs, by action",
            ("action",),
        )
        self.shard_range_lo = registry_.gauge(
            "crawler_shard_range_lo",
            "inclusive 16-bit prefix lower bound of each live shard range",
            ("shard",),
        )
        self.shard_range_hi = registry_.gauge(
            "crawler_shard_range_hi",
            "exclusive 16-bit prefix upper bound of each live shard range",
            ("shard",),
        )
        self.shard_active = registry_.gauge(
            "crawler_shard_active",
            "1 while a shard segment is live, 0 once retired by a reshard",
            ("shard",),
        )
        self.shard_count = registry_.gauge(
            "crawler_shard_count", "live shards in the current plan"
        )
        #: segments this facade last published as active, so a plan
        #: refresh can retire the gauges of ranges that handed off
        self._plan_segments: set = set()
        # -- discovery ------------------------------------------------------
        self.discovery_datagrams = registry_.counter(
            "discovery_datagrams_total", "raw UDP datagrams", ("direction",)
        )
        self.discovery_packets = registry_.counter(
            "discovery_packets_total",
            "decoded discv4 packets by direction and type",
            ("direction", "type"),
        )
        self.discovery_bad_packets = registry_.counter(
            "discovery_bad_packets_total", "datagrams that failed to decode"
        )
        self.discovery_bonds = registry_.counter(
            "discovery_bonds_total", "endpoint-proof attempts by outcome", ("outcome",)
        )
        self.discovery_table_size = registry_.gauge(
            "discovery_table_size", "entries in the Kademlia routing table"
        )
        self.discovery_chaos_faults = registry_.counter(
            "discovery_chaos_faults_total",
            "datagram faults injected by the chaos layer",
            ("fault",),
        )
        # -- served side (FullNode) -----------------------------------------
        self.inbound = registry_.counter(
            "fullnode_inbound_total",
            "inbound-connection milestones on a served node",
            ("phase",),
        )
        self.headers_served = registry_.counter(
            "fullnode_headers_served_total", "block headers answered to peers"
        )
        # label-child handles resolved once per (outcome, stage) — the
        # shard label is fixed for a facade's lifetime, and labels() is
        # too hot to re-run per dial
        self._dial_children: dict[tuple, object] = {}
        self._dial_seconds_child = self.dial_seconds.labels(shard=self.shard)

    # -- primitives ---------------------------------------------------------

    def start_span(self, name: str) -> Span:
        span = Span(name, self.clock)
        if self.recorder is not None:
            self.recorder.track_span(span, self.shard)
        return span

    def emit(self, event_type: str, **fields) -> None:
        """Journal one event (no-op without a journal or flight recorder)."""
        if self.journal is None and self.recorder is None:
            return
        clean = {key: value for key, value in fields.items() if value is not None}
        event = Event(type=event_type, ts=self.clock(), fields=clean)
        if self.journal is not None:
            with self.profiler.scope("journal.append"):
                self.journal.emit(event)
        if self.recorder is not None:
            self.recorder.record_event(event, self.shard)

    # -- harvest ------------------------------------------------------------

    def record_dial(
        self, result: "DialResult", span: Optional[Span] = None, attempt: int = 1
    ) -> None:
        """One completed harvest attempt: funnel counter, latency
        histograms from the span's stage children, and the journal's
        dial / hello / status / dao / disconnect records."""
        outcome = result.outcome.value
        stage = result.failure_stage or ""
        child = self._dial_children.get((outcome, stage))
        if child is None:
            child = self.dials.labels(outcome=outcome, stage=stage, shard=self.shard)
            self._dial_children[(outcome, stage)] = child
        child.inc()
        self._dial_seconds_child.observe(result.duration)
        stages = {}
        if span is not None:
            stages = span.stage_durations()
            for stage, duration in stages.items():
                self.stage_seconds.labels(stage=stage, shard=self.shard).observe(
                    duration
                )
        if self.journal is None and self.recorder is None:
            return
        node_id = _hex(result.node_id)
        self.emit(
            "dial",
            node_id=node_id,
            ip=result.ip,
            tcp_port=result.tcp_port,
            started=result.timestamp,
            outcome=outcome,
            connection_type=result.connection_type,
            duration=result.duration,
            latency=result.latency or None,
            attempt=attempt,
            stages=stages or None,
            failure_stage=result.failure_stage,
            failure_detail=result.failure_detail,
        )
        if result.got_hello:
            self.emit(
                "hello",
                node_id=node_id,
                client_id=result.client_id,
                capabilities=[list(cap) for cap in result.capabilities or []],
                listen_port=result.listen_port,
            )
        if result.got_status:
            self.emit(
                "status",
                node_id=node_id,
                network_id=result.network_id,
                genesis_hash=_hex(result.genesis_hash),
                best_hash=_hex(result.best_hash),
                best_block=result.best_block,
                head_height=result.head_height,
                total_difficulty=result.total_difficulty,
            )
        if result.dao_side is not None:
            self.emit("dao", node_id=node_id, verdict=result.dao_side)
        if result.disconnect_reason is not None:
            self.emit(
                "disconnect",
                node_id=node_id,
                reason=int(result.disconnect_reason),
                reason_name=result.disconnect_reason.name.lower().replace("_", "-"),
                sent_by="remote",
            )
        elif result.outcome.value == "full-harvest":
            # a full harvest always ends with our DISCONNECT(Client quitting)
            self.emit(
                "disconnect",
                node_id=node_id,
                reason=8,
                reason_name="client-quitting",
                sent_by="local",
            )

    def record_retry(
        self, node_id: Optional[bytes], attempt: int, delay: float
    ) -> None:
        self.retries.labels(shard=self.shard).inc()
        self.emit("retry", node_id=_hex(node_id), attempt=attempt, delay=delay)

    def record_breaker(
        self, node_id: bytes, old: "BreakerState", new: "BreakerState"
    ) -> None:
        self.breaker_transitions.labels(to=new.value, shard=self.shard).inc()
        self.emit(
            "breaker", node_id=_hex(node_id), old=old.value, new=new.value
        )
        if self.recorder is not None and new.value == "open":
            self.recorder.dump("breaker-open", detail=_hex(node_id) or "")

    def record_subnet_breaker(
        self, subnet: str, old: "BreakerState", new: "BreakerState"
    ) -> None:
        """A subnet-scope breaker changed state (coordinated-failure guard)."""
        self.subnet_breaker_transitions.labels(to=new.value).inc()
        self.emit(
            "breaker", scope="subnet", subnet=subnet, old=old.value, new=new.value
        )
        if self.recorder is not None and new.value == "open":
            self.recorder.dump("subnet-breaker-open", detail=subnet)

    # -- crawler scheduler ---------------------------------------------------

    def record_scheduled_dial(self, connection_type: str) -> None:
        self.scheduled_dials.labels(type=connection_type, shard=self.shard).inc()

    def record_dial_crash(self, error: str = "") -> None:
        self.dial_failures.labels(shard=self.shard).inc()
        if self.recorder is not None:
            self.recorder.dump("dial-crash", detail=error)

    def record_breaker_skip(self) -> None:
        self.breaker_skips.labels(shard=self.shard).inc()

    def record_budget_drop(self, count: int = 1) -> None:
        if count > 0:
            self.budget_dropped_dials.inc(count)

    def record_crawler_identity(self, node_id: bytes, name: str) -> None:
        """Journal which enode identity this crawler presents — analysis
        needs it to tell the crawler's own table apart from peers."""
        self.emit("crawler", node_id=_hex(node_id), name=name)

    # -- discovery table admission ------------------------------------------

    def record_table_admission(
        self,
        node_id: bytes,
        ip: Optional[str],
        reason: str,
        subnet: Optional[str] = None,
    ) -> None:
        """A routing-table admission guard refused a candidate entry."""
        self.table_rejections.labels(reason=reason).inc()
        self.emit(
            "table_admission",
            node_id=_hex(node_id),
            ip=ip,
            reason=reason,
            subnet=subnet,
        )

    # -- crawler loops -------------------------------------------------------

    def record_loop_crash(self, loop: str, error: str) -> None:
        self.loop_crashes.inc()
        self.emit("supervisor", loop=loop, event="crash", error=error)
        if self.recorder is not None:
            self.recorder.dump("loop-crash", detail=f"{loop}: {error}")

    def record_loop_restart(self, loop: str) -> None:
        self.loop_restarts.inc()
        self.emit("supervisor", loop=loop, event="restart")

    def record_loop_death(self, loop: str, error: str) -> None:
        self.loop_deaths.inc()
        self.emit("supervisor", loop=loop, event="death", error=error)
        if self.recorder is not None:
            self.recorder.dump("loop-death", detail=f"{loop}: {error}")

    def record_shard_health(
        self,
        queue_depth: Optional[int] = None,
        lag: Optional[float] = None,
        open_breakers: Optional[int] = None,
        journal_backlog: Optional[int] = None,
        shard: Optional[str] = None,
    ) -> None:
        """Refresh this shard's health gauges (pass only what you know).

        ``shard`` overrides the facade's own label — shard loops sharing
        the crawl-wide telemetry (no per-shard journals) still publish
        under their own row instead of collapsing into it."""
        label = self.shard if shard is None else shard
        if queue_depth is not None:
            self.shard_queue_depth.labels(shard=label).set(queue_depth)
        if lag is not None:
            self.shard_loop_lag.labels(shard=label).set(lag)
        if open_breakers is not None:
            self.shard_open_breakers.labels(shard=label).set(open_breakers)
        if journal_backlog is not None:
            self.journal_backlog.labels(shard=label).set(journal_backlog)

    # -- elastic sharding ----------------------------------------------------

    def record_reshard(
        self,
        action: str,
        step: int,
        generation: int,
        parent: Tuple[int, int],
        children: Sequence[Tuple[int, int]],
    ) -> None:
        """Journal a shard handoff — the sealed segment's final record.

        ``parent`` is the prefix range this facade's shard owned;
        ``children`` are the range(s) it became.  The reshard coordinator
        calls this through the *parent segment's* telemetry immediately
        before sealing, so replay finds the handoff exactly where the
        segment's dial stream ends."""
        self.reshard_segments.labels(action=action).inc()
        self.emit(
            "reshard",
            action=action,
            step=step,
            generation=generation,
            parent=list(parent),
            children=[list(child) for child in children],
        )

    def record_shard_plan(
        self, ranges: Sequence[Tuple[str, int, int]]
    ) -> None:
        """Publish the live plan: one (segment, lo, hi) row per range.

        Ranges retired since the previous call drop to ``active = 0`` so
        ``nodefinder top`` can render only the current partition."""
        live = set()
        for segment, lo, hi in ranges:
            live.add(segment)
            self.shard_range_lo.labels(shard=segment).set(float(lo))
            self.shard_range_hi.labels(shard=segment).set(float(hi))
            self.shard_active.labels(shard=segment).set(1.0)
        for segment in self._plan_segments - live:
            self.shard_active.labels(shard=segment).set(0.0)
            # zero the range gauges too: merge_snapshots sums across
            # instances, so a stale lo/hi left by an instance that retired
            # this segment would skew the rendered range of any instance
            # still publishing it (active counts only live publishers)
            self.shard_range_lo.labels(shard=segment).set(0.0)
            self.shard_range_hi.labels(shard=segment).set(0.0)
        self._plan_segments = live
        self.shard_count.set(float(len(ranges)))

    # -- discovery -----------------------------------------------------------

    def record_bond(self, node_id: bytes, ok: bool) -> None:
        self.discovery_bonds.labels(outcome="ok" if ok else "failed").inc()
        self.emit("bond", node_id=_hex(node_id), ok=ok)

    def record_datagram_fault(self, fault: str) -> None:
        self.discovery_chaos_faults.labels(fault=fault).inc()
        self.emit("datagram_fault", fault=fault)


#: shared no-op default — no journal, null registry, nothing recorded
NULL_TELEMETRY = Telemetry(registry=NullRegistry())
