"""Merging metrics snapshots across a fleet of instances.

The paper ran 30 NodeFinder instances and analysed their union;
:func:`merge_snapshots` gives the registry equivalent: fold N
per-instance :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
dumps into one.  Two shapes are supported:

* **aggregate** (``names=None``) — series with identical label sets are
  summed (counter/gauge values, histogram buckets), yielding the fleet
  total for every family;
* **per-instance** (``names=[...]``) — every series gains an
  ``instance`` label, keeping each crawler's contribution separate in
  one snapshot.  A family that already carries the instance label is
  rejected rather than silently shadowed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricError

_LabelKey = Tuple[Tuple[str, str], ...]


def _series_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted(labels.items()))


def split_snapshot_by_shard(snapshot: dict, shard_label: str = "shard") -> dict:
    """Split one registry snapshot into per-shard snapshots.

    Returns ``{shard value: snapshot}`` over every family carrying the
    shard label, with that label stripped from the split series — so each
    shard's snapshot can be re-merged via :func:`merge_snapshots` under a
    per-shard instance name.  Elastic crawls label shards with their
    stable segment id (``<k>.g<gen>``), which is what keeps the merged
    names (``<name>-shard<k>.g<gen>``) collision-free after a split
    re-uses positional indices.  Series with an empty shard value (the
    crawl-wide facade's row) are not attributed to any shard.
    """
    shards: Dict[str, dict] = {}
    families_by_shard: Dict[str, Dict[str, dict]] = {}
    for family in snapshot.get("metrics", []):
        labelnames = list(family.get("labelnames", []))
        if shard_label not in labelnames:
            continue
        stripped = [name for name in labelnames if name != shard_label]
        for series in family.get("series", []):
            shard = str(series["labels"].get(shard_label, ""))
            if not shard:
                continue
            out = shards.setdefault(shard, {"metrics": []})
            families = families_by_shard.setdefault(shard, {})
            target = families.get(family["name"])
            if target is None:
                target = {
                    "name": family["name"],
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": stripped,
                    "series": [],
                }
                families[family["name"]] = target
                out["metrics"].append(target)
            labels = {
                key: value
                for key, value in series["labels"].items()
                if key != shard_label
            }
            copied = {key: value for key, value in series.items() if key != "labels"}
            if "buckets" in copied:
                copied["buckets"] = [list(bucket) for bucket in copied["buckets"]]
            copied["labels"] = labels
            target["series"].append(copied)
    return dict(sorted(shards.items()))


def _merge_series(target: dict, source: dict, family: str) -> None:
    if "value" in source:
        target["value"] = target.get("value", 0.0) + source["value"]
        return
    if [bound for bound, _ in target["buckets"]] != [
        bound for bound, _ in source["buckets"]
    ]:
        raise MetricError(
            f"histogram {family} has mismatched bucket bounds across instances"
        )
    target["buckets"] = [
        [bound, count + other_count]
        for (bound, count), (_, other_count) in zip(
            target["buckets"], source["buckets"]
        )
    ]
    target["inf"] += source["inf"]
    target["sum"] += source["sum"]
    target["count"] += source["count"]


def merge_snapshots(
    snapshots: Sequence[dict],
    names: Optional[Sequence[str]] = None,
    instance_label: str = "instance",
) -> dict:
    """Fold per-instance registry snapshots into one fleet snapshot."""
    if names is not None:
        if len(names) != len(snapshots):
            raise MetricError(
                f"{len(snapshots)} snapshots but {len(names)} instance names"
            )
        if len(set(names)) != len(names):
            # name the duplicates: a fleet labelling elastic shards by
            # positional index (instead of the generation-suffixed
            # segment id) collides here, and the message must say where
            duplicated = sorted(
                {name for name in names if list(names).count(name) > 1}
            )
            raise MetricError(
                "duplicate instance names would collide: "
                + ", ".join(repr(name) for name in duplicated)
            )

    families: Dict[str, dict] = {}
    order: List[str] = []
    for index, snapshot in enumerate(snapshots):
        for family in snapshot.get("metrics", []):
            name = family["name"]
            merged = families.get(name)
            if merged is None:
                labelnames = list(family["labelnames"])
                if names is not None:
                    if instance_label in labelnames:
                        # name both colliding sources: the instance being
                        # merged and whoever already stamped the label
                        owners = sorted(
                            {
                                str(
                                    series["labels"].get(
                                        instance_label, "<unlabeled>"
                                    )
                                )
                                for series in family["series"]
                            }
                        )
                        raise MetricError(
                            f"metric {name} already has a {instance_label!r} "
                            f"label (from {', '.join(owners)}); merging "
                            f"instance {names[index]!r} on top would collide"
                        )
                    labelnames.append(instance_label)
                merged = {
                    "name": name,
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": labelnames,
                    "_series": {},
                }
                families[name] = merged
                order.append(name)
            elif merged["type"] != family["type"]:
                raise MetricError(
                    f"metric {name} registered as {merged['type']} by one "
                    f"instance and {family['type']} by another"
                )
            for series in family["series"]:
                labels = dict(series["labels"])
                if names is not None:
                    labels[instance_label] = names[index]
                key = _series_key(labels)
                existing = merged["_series"].get(key)
                if existing is None:
                    copied = {k: v for k, v in series.items() if k != "labels"}
                    if "buckets" in copied:
                        copied["buckets"] = [list(b) for b in copied["buckets"]]
                    copied["labels"] = labels
                    merged["_series"][key] = copied
                else:
                    _merge_series(existing, series, name)

    metrics = []
    for name in sorted(order):
        family = families[name]
        series = [family["_series"][key] for key in sorted(family["_series"])]
        metrics.append(
            {
                "name": family["name"],
                "type": family["type"],
                "help": family["help"],
                "labelnames": family["labelnames"],
                "series": series,
            }
        )
    return {"metrics": metrics}
