"""Dial-stage tracing: one span per dial, one child span per stage.

The §4 harvest is a fixed five-stage pipeline (connect → rlpx → hello →
status → dao); a :class:`Span` times the whole dial and a child span
times each stage, so per-stage latency histograms and the journal's
``stages`` breakdown fall out of the same measurements.  Spans read time
exclusively from the clock injected at construction (OBS-CLOCK bans a
direct wall-clock call here), which a live run points at
``time.monotonic`` and a simulated run points at its sim clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Span:
    """One timed operation, possibly with timed children."""

    __slots__ = ("name", "start", "duration", "outcome", "children", "_clock")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        self.start = clock()
        self.duration: Optional[float] = None
        self.outcome: Optional[str] = None
        self.children: List["Span"] = []

    def child(self, name: str) -> "Span":
        """Start a child span now."""
        child = Span(name, self._clock)
        self.children.append(child)
        return child

    def finish(self, outcome: str = "ok") -> float:
        """Close the span (idempotent); returns its duration.

        Children still open inherit the same outcome — an exception that
        ends a dial mid-stage closes the stage it died in.
        """
        for child in self.children:
            if child.duration is None:
                child.finish(outcome)
        if self.duration is None:
            self.duration = self._clock() - self.start
            self.outcome = outcome
        return self.duration

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def stage_durations(self) -> Dict[str, float]:
        """Child name → duration for every finished child, in start order."""
        return {
            child.name: child.duration
            for child in self.children
            if child.duration is not None
        }
