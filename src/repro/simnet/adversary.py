"""Attacker node models living inside the simulated world.

"Eclipsing Ethereum Peers with False Friends" (Henningsen et al., see
PAPERS.md) showed the discovery stack this repo reimplements is
vulnerable to coordinated table poisoning.  This module puts those
attackers *inside* the simnet so the crawler, its breakers, and its
retry machinery face a hostile population on the same deterministic
world clock as everything else:

* **Sybil swarm** — ``sybil_count`` attacker identities minted from a
  single /24 (``subnet``), spread over a configurable set of ASes, all
  always-online, always-reachable, masquerading as synced Mainnet Geth
  nodes that accept every connection (so a victim keeps them on its
  StaticNodes schedule and re-dials them forever);
* **node-ID grinding** — a quota of Sybil IDs is ground (drawn until
  their keccak lands at a chosen Geth log-distance from the victim's ID
  hash, reusing :func:`~repro.discovery.distance.geth_log_distance`) so
  the swarm concentrates in the victim's near k-buckets, where random
  IDs essentially never fall;
* **false-friend NEIGHBORS** — an attacker answers FIND_NODE with
  confederates only, XOR-sorted toward the target so the answer looks
  protocol-correct while steering every lookup branch that touches an
  attacker back into the swarm;
* **FINDNODE amplification** — each poisoned answer is padded with
  *phantoms*: node IDs that exist nowhere in the world, whose addresses
  sit in the attacker subnet.  Dialing a phantom is 15 s of dead air
  (the world's unknown-ID timeout), so one cheap UDP answer amplifies
  into minutes of wasted TCP dial budget on the victim.

Everything is driven by one seeded ``random.Random``; launching the same
campaign against the same world twice produces byte-identical runs.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.keccak import keccak256
from repro.discovery.distance import geth_log_distance
from repro.simnet.geo import Location
from repro.simnet.node import SimNode
from repro.simnet.population import NodeSpec
from repro.simnet.world import SimWorld


@dataclass
class AdversaryConfig:
    """One eclipse/Sybil campaign's knobs."""

    #: Sybil identities registered as live world nodes
    sybil_count: int = 48
    #: the /24 the swarm (and its phantoms) is minted from
    subnet: str = "66.66.66.0/24"
    #: ASes the swarm claims, cycled over the identities (simnet.geo view)
    asns: Tuple[str, ...] = ("AS-eclipse",)
    #: victim buckets targeted by ID grinding (Geth log distances; a
    #: random ID lands at distance d with P = 2^(d-257), so bucket 248 is
    #: a 1-in-512 draw — the swarm over-represents the victim's near
    #: buckets ~4x against the 2^(d-257) natural density)
    grind_buckets: Tuple[int, ...] = (248, 249, 250, 251, 252)
    grind_per_bucket: int = 2
    #: draw cap for the grinder (the default quota needs ~2k draws)
    grind_attempt_limit: int = 50_000
    #: answer FIND_NODE with confederates only
    false_friends: bool = True
    #: phantom identity pool backing the amplification padding
    phantom_pool: int = 192
    #: phantoms mixed into each poisoned NEIGHBORS answer
    phantoms_per_answer: int = 8
    #: fraction of honest neighbour tables seeded with attackers at launch
    infiltrate_fraction: float = 0.25
    infiltrate_per_table: int = 3
    #: campaign RNG seed (independent of the world seed)
    seed: int = 666
    #: the swarm never churns; keep it alive past any measurement window
    departure_day: float = 10_000.0
    client_string: str = "Geth/v1.8.7-stable-0cd5e0db/linux-amd64/go1.10"


class _Phantom:
    """A minted address with no node behind it — dials are dead air."""

    __slots__ = ("spec",)

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec


class AttackerNode(SimNode):
    """A Sybil: an ordinary-looking node whose NEIGHBORS answers lie."""

    __slots__ = ("campaign",)

    def __init__(
        self,
        spec: NodeSpec,
        builder,
        rng: random.Random,
        campaign: "AdversaryCampaign",
    ) -> None:
        super().__init__(spec, builder, rng)
        self.campaign = campaign
        # accept every dial: the victim keeps the Sybil on its StaticNodes
        # schedule and burns a re-dial on it every cycle
        self.occupancy = 0.0
        self.status_reliability = 1.0

    def find_node(self, target_hash: bytes, count: int = 16) -> List:
        if not self.campaign.config.false_friends:
            return super().find_node(target_hash, count)
        return self.campaign.poisoned_answer(target_hash, count)


class AdversaryCampaign:
    """Mints the swarm, injects it into a world, and scores the result."""

    def __init__(self, config: Optional[AdversaryConfig] = None) -> None:
        self.config = config or AdversaryConfig()
        self._rng = random.Random(self.config.seed)
        self.attackers: List[AttackerNode] = []
        self.phantoms: List[_Phantom] = []
        self.attacker_ids: Set[bytes] = set()
        self.phantom_ids: Set[bytes] = set()
        #: ground IDs by the victim bucket they landed in
        self.ground_ids: Dict[int, List[bytes]] = {}
        self.victim_node_id: Optional[bytes] = None
        self.answers_served = 0
        self.infiltrated_tables = 0
        self._phantom_cursor = 0
        self._launched = False

    # -- minting ------------------------------------------------------------

    def _subnet_ips(self) -> List[str]:
        network = ipaddress.ip_network(self.config.subnet)
        return [str(host) for host in network.hosts()]

    def _location(self, ip: str, index: int) -> Location:
        asns = self.config.asns or ("AS-eclipse",)
        return Location(
            country="XX",
            region="eu-west",
            asn=asns[index % len(asns)],
            is_cloud=True,
            ip=ip,
        )

    def _grind(self, victim_hash: bytes) -> List[bytes]:
        """Draw node IDs until the per-bucket quotas are filled."""
        wanted = {
            bucket: self.config.grind_per_bucket
            for bucket in self.config.grind_buckets
        }
        remaining = sum(wanted.values())
        ground: List[bytes] = []
        for _ in range(self.config.grind_attempt_limit):
            if remaining == 0:
                break
            candidate = self._rng.randbytes(64)
            bucket = geth_log_distance(victim_hash, keccak256(candidate))
            if wanted.get(bucket, 0) > 0:
                wanted[bucket] -= 1
                remaining -= 1
                ground.append(candidate)
                self.ground_ids.setdefault(bucket, []).append(candidate)
        return ground

    def _attacker_spec(self, node_id: bytes, ip: str, index: int, world: SimWorld) -> NodeSpec:
        return NodeSpec(
            node_id=node_id,
            location=self._location(ip, index),
            tcp_port=30303,
            udp_port=30303,
            service="eth",
            capabilities=[("eth", 62), ("eth", 63)],
            client_family="geth",
            client_string=self.config.client_string,
            version_behaviour=None,
            peer_limit=10_000,
            metric="geth",
            network_name="mainnet",
            network_id=1,
            genesis_hash=world.mainnet.genesis_hash,
            supports_dao=True,
            reachable=True,
            arrival_day=0.0,
            departure_day=self.config.departure_day,
            uptime_fraction=1.0,
        )

    # -- launch -------------------------------------------------------------

    def launch(self, world: SimWorld, victim_node_id: bytes) -> None:
        """Inject the swarm into ``world``, aimed at ``victim_node_id``.

        Must run after the world is built and before the victim crawler
        starts (mirroring an attacker who is in place when the victim
        boots — the table-flush window of Marcus et al.).
        """
        if self._launched:
            raise RuntimeError("campaign already launched")
        self._launched = True
        self.victim_node_id = victim_node_id
        victim_hash = keccak256(victim_node_id)
        ips = self._subnet_ips()
        config = self.config

        node_ids = self._grind(victim_hash)
        while len(node_ids) < config.sybil_count:
            node_ids.append(self._rng.randbytes(64))
        node_ids = node_ids[: config.sybil_count]

        for index, node_id in enumerate(node_ids):
            spec = self._attacker_spec(
                node_id, ips[index % len(ips)], index, world
            )
            attacker = AttackerNode(spec, world.builder, self._rng, self)
            self.attackers.append(attacker)
            self.attacker_ids.add(node_id)
            world.nodes[node_id] = attacker
        # confederate tables: even the non-poisoning fallback answers from
        # the swarm, so every road through an attacker leads to attackers
        for attacker in self.attackers:
            attacker.neighbors = [
                other for other in self.attackers if other is not attacker
            ]

        for index in range(config.phantom_pool):
            node_id = self._rng.randbytes(64)
            spec = self._attacker_spec(
                node_id, ips[(config.sybil_count + index) % len(ips)], index, world
            )
            self.phantoms.append(_Phantom(spec))
            self.phantom_ids.add(node_id)

        self._infiltrate(world)

    def _infiltrate(self, world: SimWorld) -> None:
        """Seed attackers into a slice of honest neighbour tables.

        From there the world's own neighbour-refresh churn keeps folding
        the swarm into the discovery fabric, the same way a real attacker
        rides organic NEIGHBORS gossip.
        """
        honest = [
            node
            for node in world.nodes.values()
            if node.spec.node_id not in self.attacker_ids and node.neighbors
        ]
        if not honest or not self.attackers:
            return
        count = int(len(honest) * self.config.infiltrate_fraction)
        per_table = min(self.config.infiltrate_per_table, len(self.attackers))
        for node in self._rng.sample(honest, min(count, len(honest))):
            node.neighbors.extend(self._rng.sample(self.attackers, per_table))
            self.infiltrated_tables += 1

    # -- the false-friend answer --------------------------------------------

    def poisoned_answer(self, target_hash: bytes, count: int) -> List:
        """Confederates XOR-sorted toward the target, padded with phantoms.

        The sort makes the answer look protocol-correct (closest first);
        the padding is the amplification — every phantom the victim dials
        is 15 s of dead air charged to the attacker's /24.
        """
        self.answers_served += 1
        target_int = int.from_bytes(target_hash, "big")
        confederates = sorted(
            self.attackers, key=lambda node: node.id_hash_int ^ target_int
        )
        phantom_slots = min(self.config.phantoms_per_answer, count)
        answer: List = confederates[: max(0, count - phantom_slots)]
        if self.phantoms:
            for _ in range(min(phantom_slots, count - len(answer))):
                answer.append(
                    self.phantoms[self._phantom_cursor % len(self.phantoms)]
                )
                self._phantom_cursor += 1
        return answer[:count]

    # -- scoring ------------------------------------------------------------

    def is_attacker(self, node_id: bytes) -> bool:
        return node_id in self.attacker_ids or node_id in self.phantom_ids

    def table_share(self, table) -> float:
        """Attacker fraction of a routing table's live entries."""
        entries = list(table)
        if not entries:
            return 0.0
        hostile = sum(1 for node in entries if self.is_attacker(node.node_id))
        return hostile / len(entries)

    def observed_share(self, node_ids) -> float:
        """Attacker fraction of an arbitrary observed-node-ID collection."""
        ids = list(node_ids)
        if not ids:
            return 0.0
        return sum(1 for node_id in ids if self.is_attacker(node_id)) / len(ids)
