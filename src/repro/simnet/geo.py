"""Geography, autonomous systems, and latency.

The paper locates Mainnet nodes with a GeoIP database (§7.2, Figures 12-13):
43.2% in the US, 12.9% in China, a cloud-heavy AS mix where the top 8 ASes
(Amazon, Alibaba, Digital Ocean, OVH, Hetzner, Google, ...) hold 44.8% of
nodes.  We have no GeoIP database or live addresses, so the substitution
runs the *other* way: nodes are assigned countries/ASes from the published
marginals, and the latency model gives each (region, region) pair a
plausible RTT so the Figure 13 latency CDF has the right shape.
"""

from __future__ import annotations

import bisect
import ipaddress
import itertools
import random
import zlib
from dataclasses import dataclass

#: Country share of Mainnet nodes (Figure 12) — (ISO code, share, region).
COUNTRY_DISTRIBUTION: list[tuple[str, float, str]] = [
    ("US", 0.432, "na"),
    ("CN", 0.129, "asia"),
    ("DE", 0.062, "eu"),
    ("RU", 0.035, "eu"),
    ("CA", 0.031, "na"),
    ("GB", 0.030, "eu"),
    ("KR", 0.028, "asia"),
    ("FR", 0.026, "eu"),
    ("SG", 0.024, "asia"),
    ("JP", 0.022, "asia"),
    ("NL", 0.021, "eu"),
    ("AU", 0.015, "oceania"),
    ("UA", 0.013, "eu"),
    ("IN", 0.012, "asia"),
    ("BR", 0.011, "sa"),
    ("PL", 0.010, "eu"),
    ("HK", 0.010, "asia"),
    ("CH", 0.009, "eu"),
    ("SE", 0.008, "eu"),
    ("IT", 0.008, "eu"),
    ("FI", 0.007, "eu"),
    ("ES", 0.006, "eu"),
    ("TW", 0.006, "asia"),
    ("CZ", 0.005, "eu"),
    ("OTHER", 0.040, "eu"),
]

#: AS share of Mainnet nodes (§7.2) — (AS name, share, is_cloud).
#: The named top-8 clouds total ≈ 44.8%.
AS_DISTRIBUTION: list[tuple[str, float, bool]] = [
    ("Amazon.com (AS16509)", 0.140, True),
    ("Alibaba (AS45102)", 0.090, True),
    ("DigitalOcean (AS14061)", 0.065, True),
    ("OVH (AS16276)", 0.045, True),
    ("Hetzner (AS24940)", 0.040, True),
    ("Google Cloud (AS15169)", 0.035, True),
    ("Tencent Cloud (AS45090)", 0.018, True),
    ("Microsoft Azure (AS8075)", 0.015, True),
    ("Comcast (AS7922)", 0.020, False),
    ("China Telecom (AS4134)", 0.018, False),
    ("Deutsche Telekom (AS3320)", 0.012, False),
    ("Verizon (AS701)", 0.010, False),
    ("China Unicom (AS4837)", 0.010, False),
    ("Charter (AS20115)", 0.008, False),
    ("Korea Telecom (AS4766)", 0.008, False),
]
_AS_TAIL_COUNT = 400  # small residential/hosting ASes sharing the remainder

#: One-way base latencies between regions, seconds (vantage point: US).
REGION_RTT: dict[tuple[str, str], float] = {
    ("na", "na"): 0.040,
    ("na", "eu"): 0.100,
    ("na", "asia"): 0.170,
    ("na", "sa"): 0.140,
    ("na", "oceania"): 0.190,
    ("eu", "eu"): 0.030,
    ("eu", "asia"): 0.200,
    ("eu", "sa"): 0.200,
    ("eu", "oceania"): 0.280,
    ("asia", "asia"): 0.060,
    ("asia", "sa"): 0.320,
    ("asia", "oceania"): 0.120,
    ("sa", "sa"): 0.040,
    ("sa", "oceania"): 0.310,
    ("oceania", "oceania"): 0.030,
}


@dataclass(frozen=True)
class Location:
    """A node's network location."""

    country: str
    region: str
    asn: str
    is_cloud: bool
    ip: str


class _WeightedPicker:
    """O(log n) weighted choice over a fixed table."""

    def __init__(self, weights: list[float]) -> None:
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def pick(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random() * self._total)


class GeoModel:
    """Assigns locations and computes pairwise RTTs."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._country_picker = _WeightedPicker(
            [share for _, share, _ in COUNTRY_DISTRIBUTION]
        )
        named_total = sum(share for _, share, _ in AS_DISTRIBUTION)
        self._as_picker = _WeightedPicker(
            [share for _, share, _ in AS_DISTRIBUTION] + [1.0 - named_total]
        )
        self._ip_space: dict[str, int] = {}

    def assign(self) -> Location:
        """Draw a location from the paper's marginals."""
        country, _, region = COUNTRY_DISTRIBUTION[self._country_picker.pick(self._rng)]
        as_index = self._as_picker.pick(self._rng)
        if as_index < len(AS_DISTRIBUTION):
            asn, _, is_cloud = AS_DISTRIBUTION[as_index]
        else:
            asn = f"AS-tail-{self._rng.randrange(_AS_TAIL_COUNT)}"
            is_cloud = self._rng.random() < 0.3
        return Location(
            country=country,
            region=region,
            asn=asn,
            is_cloud=is_cloud,
            ip=self.fresh_ip(country),
        )

    def fresh_ip(self, country: str) -> str:
        """A unique synthetic IPv4 address, loosely clustered by country.

        Addresses stay inside a per-country block (first/second octet) but
        consecutive assignments rotate through distinct /24s: real
        populations almost never stack many nodes into one /24 (Geth's
        ``tableIPLimit`` counts on it), so only a deliberate Sybil swarm
        concentrates there — honest worlds must not look like one.
        """
        index = self._ip_space.get(country, 0)
        self._ip_space[country] = index + 1
        block = zlib.crc32(country.encode()) % 200 + 16
        slot, third = divmod(index, 223)
        high, fourth = divmod(slot, 254)
        second = (high * 7 + zlib.crc32(country.encode()) // 251) % 223 + 1
        return str(
            ipaddress.IPv4Address(
                (block << 24) | (second << 16) | ((third + 1) << 8) | (fourth + 1)
            )
        )

    def rtt(self, a: Location, b: Location, rng: random.Random | None = None) -> float:
        """Smoothed round-trip time between two locations, seconds.

        Base region RTT plus lognormal jitter; residential last miles add
        a few tens of milliseconds over cloud datacenters.
        """
        rng = rng or self._rng
        key = (a.region, b.region)
        base = REGION_RTT.get(key) or REGION_RTT.get((b.region, a.region), 0.150)
        last_mile = 0.0
        if not a.is_cloud:
            last_mile += 0.010 + rng.random() * 0.030
        if not b.is_cloud:
            last_mile += 0.010 + rng.random() * 0.030
        jitter = rng.lognormvariate(-4.0, 0.8)  # median ~18ms heavy tail
        return base + last_mile + jitter

    def rtt_batch(
        self,
        origin: Location,
        destinations: list[Location],
        rng: random.Random | None = None,
    ) -> list[float]:
        """RTTs from one origin to many destinations.

        Draw-for-draw identical to calling :meth:`rtt` once per
        destination in order — the world's deliver loop batches a whole
        tick's latencies through one call without moving the RNG stream,
        paying the method/lookup overhead once instead of per node.
        """
        rng = rng or self._rng
        origin_region = origin.region
        origin_cloud = origin.is_cloud
        region_rtt = REGION_RTT
        rand = rng.random
        lognorm = rng.lognormvariate
        out: list[float] = []
        append = out.append
        for dest in destinations:
            base = region_rtt.get((origin_region, dest.region)) or region_rtt.get(
                (dest.region, origin_region), 0.150
            )
            last_mile = 0.0
            if not origin_cloud:
                last_mile += 0.010 + rand() * 0.030
            if not dest.is_cloud:
                last_mile += 0.010 + rand() * 0.030
            append(base + last_mile + lognorm(-4.0, 0.8))
        return out

    def country_histogram(self, locations: list[Location]) -> dict[str, float]:
        """Fraction of nodes per country (the Figure 12 view)."""
        counts: dict[str, int] = {}
        for location in locations:
            counts[location.country] = counts.get(location.country, 0) + 1
        total = max(len(locations), 1)
        return {country: count / total for country, count in counts.items()}

    def as_histogram(self, locations: list[Location]) -> dict[str, float]:
        counts: dict[str, int] = {}
        for location in locations:
            counts[location.asn] = counts.get(location.asn, 0) + 1
        total = max(len(locations), 1)
        return {asn: count / total for asn, count in counts.items()}
