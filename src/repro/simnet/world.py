"""The assembled simulated ecosystem NodeFinder crawls.

``SimWorld`` owns the clock, the population, per-network synthetic chains,
the abusive node-ID factories, and the plumbing a crawler uses:

* ``dial(address, ...)`` — a TCP connection attempt, answered from the
  target node's behaviour model;
* ``find_node_query(address, target)`` — a bonded discv4 FIND_NODE,
  answered from the target's neighbour table under its own metric;
* listener registration — unreachable (NATed) nodes and abusive factories
  periodically dial registered listeners, which is the only way a crawler
  ever sees them (paper §5.5, Table 2's NFU column).

The Mainnet chain grows in real (simulated) time, so STATUS best-blocks and
Figure 14 freshness come out of node lag, not hardcoding.
"""

from __future__ import annotations

import gc
import random
import zlib
from dataclasses import dataclass, field
from itertools import compress
from typing import NamedTuple, Optional, Protocol

try:  # optional acceleration for the online-node mask at scale
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev installs
    _np = None

from repro.chain.synthetic import (
    MAINNET_HEIGHT_APRIL_2018,
    SyntheticChain,
)
from repro.discovery.enode import _cached_id_hash
from repro.ethproto.forks import BYZANTIUM_BLOCK
from repro.simnet.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    EventClock,
    SimClock,
)
from repro.simnet.geo import GeoModel, Location
from repro.simnet.node import DialOutcome, DialResult, SimNode
from repro.simnet.population import (
    AbusiveIPSpec,
    NodeSpec,
    PopulationBuilder,
    PopulationConfig,
    generate_population,
)

#: Blocks mined per second on the simulated Mainnet (15s interval).
BLOCKS_PER_SECOND = 1.0 / 15.0


class NodeAddress(NamedTuple):
    """What discovery tells you about a node: identity + endpoint."""

    node_id: bytes
    ip: str
    udp_port: int
    tcp_port: int


class Listener(Protocol):
    """Something that accepts incoming connections (a NodeFinder instance)."""

    location: Location
    node_id: bytes

    def handle_incoming(self, result: DialResult) -> None: ...


@dataclass
class WorldConfig:
    """World-level knobs on top of the population config."""

    population: PopulationConfig = field(default_factory=PopulationConfig)
    seed: int = 7
    #: neighbour-table size per node (discovery answers come from these)
    neighbor_count: int = 30
    #: how often a slice of neighbour tables is refreshed, hours
    neighbor_refresh_hours: float = 6.0
    #: Mainnet head height at sim day 0 (2018-04-18)
    mainnet_start_height: int = MAINNET_HEIGHT_APRIL_2018 - 5 * 5760
    #: per-online-node rate of dialing each registered listener, per day
    incoming_rate_per_day: float = 2.5


class _OnlineIndex:
    """Array-backed evaluator of the online-node mask.

    Holds the immutable lifecycle fields of every node in parallel flat
    arrays (the bitcoin-simulator layout) so the 10-sim-minute online
    recomputation is a handful of vector ops instead of a Python-level
    ``is_online`` call per node.  The mask reproduces
    :meth:`NodeSpec.is_online` bit for bit — same IEEE ops in the same
    order — and the result list preserves node-map insertion order, so
    swapping this in does not move a single RNG draw.

    Arrays are rebuilt whenever the node map changes size (listener
    presences, adversary injections); lifecycle fields themselves are
    static after construction.  Worlds without numpy fall back to the
    plain per-node scan.
    """

    __slots__ = (
        "_size",
        "_nodes",
        "_arrival",
        "_departure",
        "_uptime",
        "_period",
        "_phase",
        "_stable",
    )

    def __init__(self) -> None:
        self._size = -1
        self._nodes: list[SimNode] = []

    def _rebuild(self, node_map: dict) -> None:
        nodes = list(node_map.values())
        self._nodes = nodes
        specs = [node.spec for node in nodes]
        self._arrival = _np.array([s.arrival_day for s in specs])
        self._departure = _np.array([s.departure_day for s in specs])
        self._uptime = _np.array([s.uptime_fraction for s in specs])
        self._period = _np.array([s.session_period_hours for s in specs]) / 24.0
        self._phase = _np.array([s.phase for s in specs])
        self._stable = self._uptime >= 0.999
        self._size = len(nodes)

    def online_at(self, node_map: dict, day: float) -> list:
        if _np is None:
            return [n for n in node_map.values() if n.spec.is_online(day)]
        if len(node_map) != self._size:
            self._rebuild(node_map)
        alive = (self._arrival <= day) & (day < self._departure)
        position = ((day + self._phase) % self._period) / self._period
        mask = alive & (self._stable | (position < self._uptime))
        return list(compress(self._nodes, mask.tolist()))


class AbusiveFactory:
    """Runtime state of one §5.4 node-ID-churning IP."""

    def __init__(self, spec: AbusiveIPSpec, rng: random.Random):
        self.spec = spec
        self._rng = random.Random(rng.getrandbits(64))
        self.spawned: list[bytes] = []
        self._current: Optional[bytes] = None
        self._current_born: float = -1.0

    def is_active(self, now: float) -> bool:
        day = now / SECONDS_PER_DAY
        return self.spec.arrival_day <= day < self.spec.departure_day

    def current_node_id(self, now: float) -> bytes:
        """The factory's node ID right now; 80% of IDs are used just once."""
        lifetime = self.spec.node_lifetime_minutes * 60.0
        if (
            self._current is None
            or now - self._current_born > lifetime
            or self._rng.random() < 0.8
        ):
            self._current = self._rng.randbytes(64)
            self._current_born = now
            self.spawned.append(self._current)
        return self._current

    def dial_result(self, now: float, chain: SyntheticChain) -> DialResult:
        """What a listener records when this factory dials in.

        Mimics the flagship IP: ethereumjs client, Mainnet network id, best
        hash pinned to the genesis hash (an unsynced, freshly-created node).
        """
        node_id = self.current_node_id(now)
        return DialResult(
            timestamp=now,
            node_id=node_id,
            ip=self.spec.ip,
            tcp_port=30303,
            connection_type="incoming",
            outcome=DialOutcome.FULL_HARVEST,
            latency=0.05 + self._rng.random() * 0.1,
            duration=0.2,
            client_id=self.spec.client_string,
            capabilities=[("eth", 62), ("eth", 63)],
            listen_port=30303,
            network_id=1,
            genesis_hash=chain.genesis_hash,
            total_difficulty=chain.total_difficulty_at(0),
            best_hash=chain.genesis_hash,  # bestHash == genesis (§5.4)
            best_block=0,
            dao_side="empty",
        )


class SimWorld:
    """The ecosystem: population + chains + clock + crawler plumbing."""

    def __init__(
        self,
        config: WorldConfig | None = None,
        clock: EventClock | None = None,
    ) -> None:
        self.config = config or WorldConfig()
        # injectable so the equivalence harness can run the same world on
        # WheelClock and ReferenceClock; everything else takes the default
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(self.config.seed)
        self._dial_rng_instance = random.Random(0)  # re-seeded per dial
        specs, abusive_specs, builder = generate_population(self.config.population)
        self.builder: PopulationBuilder = builder
        self.geo: GeoModel = builder.geo
        self.nodes: dict[bytes, SimNode] = {
            spec.node_id: SimNode(spec, builder, self.rng) for spec in specs
        }
        self.factories = [AbusiveFactory(spec, self.rng) for spec in abusive_specs]
        self._chains: dict[bytes, SyntheticChain] = {}
        self.mainnet = SyntheticChain(
            "mainnet", height=self.config.mainnet_start_height
        )
        self._chains[self.mainnet.genesis_hash] = self.mainnet
        self.listeners: list[Listener] = []
        self._online_cache: tuple[float, list[SimNode]] = (-1.0, [])
        self._online_index = _OnlineIndex()
        # every best-hash a node can advertise is `chain head - lag` for a
        # lag fixed at build time, so the hash set is knowable in advance:
        # group the lags per effective genesis and bulk-warm the synthetic
        # hash memo (one vectorised keccak pass) instead of paying a
        # ~200us scalar miss per distinct height on the dial path
        self._lags_by_genesis: dict[bytes, set[int]] = {}
        self._stuck_genesis: set[bytes] = set()
        for spec in (node.spec for node in self.nodes.values()):
            genesis = spec.genesis_hash or self.mainnet.genesis_hash
            if spec.freshness == "stuck-byzantium":
                self._stuck_genesis.add(genesis)
            else:
                self._lags_by_genesis.setdefault(genesis, {0}).add(
                    spec.lag_blocks
                )
        self._warm_best_hashes(self.mainnet)
        # materialise every follower chain now, while the build is untimed:
        # each construction keccaks its seed, and chain_for would otherwise
        # do that lazily inside the first dial to each distinct genesis
        for node in self.nodes.values():
            self.chain_for(node.spec)
        self._assign_neighbors(initial=True)
        self._schedule_background()

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def day(self) -> float:
        return self.clock.now / SECONDS_PER_DAY

    @property
    def mainnet_height(self) -> int:
        return self.mainnet.height

    def run_days(self, days: float) -> None:
        self.clock.run_for(days * SECONDS_PER_DAY)

    # -- chains ------------------------------------------------------------------

    def chain_for(self, spec: NodeSpec) -> SyntheticChain:
        """The synthetic chain matching a node's genesis (created lazily)."""
        genesis = spec.genesis_hash or self.mainnet.genesis_hash
        chain = self._chains.get(genesis)
        if chain is None:
            chain = SyntheticChain(
                name=spec.network_name or "custom",
                genesis_hash=genesis,
                height=max(1000, self.mainnet.height // 50),
                supports_dao_fork=spec.supports_dao,
                network_id=spec.network_id or 0,
            )
            self._chains[genesis] = chain
            self._warm_best_hashes(chain)
        return chain

    def _warm_best_hashes(self, chain: SyntheticChain) -> None:
        """Bulk-hash every best-hash ``chain``'s followers can advertise.

        Drawn from the per-genesis lag sets fixed at build time; one
        vectorised keccak pass per call (build, lazy chain creation, and
        each hourly Mainnet growth tick).  Pure pre-computation: no RNG,
        values identical to the lazy per-miss path.
        """
        heights = {
            chain.height - lag
            for lag in self._lags_by_genesis.get(chain.genesis_hash, {0})
        }
        if chain.genesis_hash in self._stuck_genesis:
            heights.add(BYZANTIUM_BLOCK + 1)
        heights.add(chain.height)
        chain.warm_heights(heights)

    def _height_for(self, node: SimNode) -> int:
        """The head height of the network this node follows."""
        if node.spec.claims_mainnet_genesis:
            return self.mainnet.height
        return self.chain_for(node.spec).height

    # -- background processes --------------------------------------------------

    def _schedule_background(self) -> None:
        def grow_chain() -> None:
            self.mainnet.advance(int(SECONDS_PER_HOUR * BLOCKS_PER_SECOND))
            self._warm_best_hashes(self.mainnet)

        self.clock.schedule_every(SECONDS_PER_HOUR, grow_chain, label="world.grow_chain")
        refresh_interval = self.config.neighbor_refresh_hours * SECONDS_PER_HOUR

        def refresh_neighbors() -> None:
            self._assign_neighbors(initial=False)

        self.clock.schedule_every(
            refresh_interval, refresh_neighbors, label="world.refresh_neighbors"
        )

    def _assign_neighbors(self, initial: bool) -> None:
        """(Re)build neighbour tables.

        Initially every node gets a table; afterwards a rotating sixth of
        the population refreshes, folding newly-arrived nodes into the
        discovery fabric.
        """
        population = list(self.nodes.values())
        if not population:
            return
        count = self.config.neighbor_count
        targets = (
            population
            if initial
            else self.rng.sample(population, max(1, len(population) // 6))
        )
        for node in targets:
            sample_size = min(count, len(population) - 1)
            node.neighbors = self.rng.sample(population, sample_size)

    # -- online bookkeeping -------------------------------------------------------

    def online_nodes(self) -> list[SimNode]:
        """Currently-online nodes (cached for 10 sim-minutes)."""
        cached_at, cached = self._online_cache
        if self.now - cached_at < 600.0:
            return cached
        online = self._online_index.online_at(self.nodes, self.day)
        self._online_cache = (self.now, online)
        return online

    def node_address(self, node: SimNode) -> NodeAddress:
        spec = node.spec
        return NodeAddress(spec.node_id, spec.ip, spec.udp_port, spec.tcp_port)

    def bootstrap_addresses(self, count: int = 6) -> list[NodeAddress]:
        """Stable, reachable, long-lived nodes — the hardcoded bootnodes."""
        candidates = [
            node
            for node in self.nodes.values()
            if node.spec.reachable
            and node.spec.arrival_day == 0.0
            and node.spec.uptime_fraction >= 0.999
            and node.spec.service == "eth"
        ]
        candidates.sort(key=lambda node: node.id_hash)
        return [self.node_address(node) for node in candidates[:count]]

    # -- crawler plumbing ----------------------------------------------------------

    def _dial_rng(self, from_ip: str, to_ip: str, node_id: bytes) -> random.Random:
        """A per-dial RNG seeded purely from the dial's identity.

        RTT draws used to come off the shared world RNG, which made every
        dial's latency depend on global dial *order*.  A sharded crawl
        reorders dials within a tick, so latencies instead derive from
        (who, whom, when, world seed) — the same dial draws the same RTT
        no matter how many shards the crawler runs, which is what lets
        the shard-conformance suite assert entry-for-entry DB equality.
        """
        seed = zlib.crc32(
            f"{from_ip}|{to_ip}|{self.now:.6f}|{self.config.seed}".encode()
        ) ^ zlib.crc32(node_id)
        # re-seeding one shared instance is state-identical to constructing
        # a fresh Random(seed), and dials happen ~1.7/node/day: both call
        # sites consume the draws before the next dial re-seeds
        rng = self._dial_rng_instance
        rng.seed(seed)
        return rng

    def find_node_query(
        self, address: NodeAddress, target: bytes
    ) -> Optional[list[NodeAddress]]:
        """A bonded FIND_NODE to ``address`` (None = no reply).

        Only online, reachable nodes answer unsolicited UDP.  Answers come
        from the target's neighbour table under its *own* metric, filtered
        to neighbours it has seen recently (online-ish).
        """
        node = self.nodes.get(address.node_id)
        if node is None or not node.spec.reachable:
            return None
        if not node.spec.is_online(self.day):
            return None
        target_hash = _cached_id_hash(target) if len(target) == 64 else target
        answers = node.find_node(target_hash, count=16)
        return [self.node_address(neighbor) for neighbor in answers]

    def listener_address(self, listener: Listener) -> NodeAddress:
        return NodeAddress(listener.node_id, listener.location.ip, 30303, 30303)

    def _dial_listener(
        self, listener: Listener, connection_type: str, from_location: Location
    ) -> DialResult:
        """Dialing another crawler: it accepts everything and harvests back.

        This is how the paper's 30 instances found each other within 9
        hours (§5.2) — each is an ordinary, always-reachable DEVp2p node
        from the outside.
        """
        rtt = self.geo.rtt(
            from_location,
            listener.location,
            self._dial_rng(from_location.ip, listener.location.ip, listener.node_id),
        )
        return DialResult(
            timestamp=self.now,
            node_id=listener.node_id,
            ip=listener.location.ip,
            tcp_port=30303,
            connection_type=connection_type,
            outcome=DialOutcome.FULL_HARVEST,
            latency=rtt,
            duration=3 * rtt,
            client_id="Geth/v1.7.3-stable-nodefinder/linux-amd64/go1.9.2",
            capabilities=[("eth", 62), ("eth", 63)],
            listen_port=30303,
            network_id=1,
            genesis_hash=self.mainnet.genesis_hash,
            total_difficulty=self.mainnet.total_difficulty,
            best_hash=self.mainnet.best_hash,
            best_block=self.mainnet.height,
            head_height=self.mainnet.height,
            dao_side="supports",
        )

    def dial(
        self,
        address: NodeAddress,
        connection_type: str,
        from_location: Location,
    ) -> DialResult:
        """A TCP dial from a crawler at ``from_location``."""
        for listener in self.listeners:
            if listener.node_id == address.node_id:
                return self._dial_listener(listener, connection_type, from_location)
        node = self.nodes.get(address.node_id)
        if node is None:
            # unknown/expired node ID (e.g. an abusive ephemeral): dead air
            return DialResult(
                timestamp=self.now,
                node_id=address.node_id,
                ip=address.ip,
                tcp_port=address.tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.TIMEOUT,
                duration=15.0,
            )
        rtt = self.geo.rtt(
            from_location,
            node.spec.location,
            self._dial_rng(from_location.ip, node.spec.location.ip, node.spec.node_id),
        )
        return node.handle_connection(
            now=self.now,
            connection_type=connection_type,
            chain=self.chain_for(node.spec),
            world_height=self._height_for(node),
            rtt=rtt,
        )

    # -- listeners (incoming connections) ---------------------------------------

    def register_listener(self, listener: Listener) -> None:
        """Register a crawler for incoming connections.

        Every 10 sim-minutes the world delivers a Poisson batch of inbound
        dials from online nodes (reachable and unreachable alike) and from
        any active abusive factory.
        """
        self.listeners.append(listener)
        self._add_listener_presence(listener)
        interval = 600.0

        def deliver() -> None:
            online = self.online_nodes()
            if online:
                rate = len(online) * self.config.incoming_rate_per_day / 144.0
                count = self._poisson(rate)
                batch = self._sample(online, count)
                # one batched pass over the world RNG: same draws in the
                # same order as per-node rtt() calls would make
                rtts = self.geo.rtt_batch(
                    listener.location,
                    [node.spec.location for node in batch],
                    self.rng,
                )
                now = self.now
                for node, rtt in zip(batch, rtts):
                    result = node.handle_connection(
                        now=now,
                        connection_type="incoming",
                        chain=self.chain_for(node.spec),
                        world_height=self._height_for(node),
                        rtt=rtt,
                    )
                    if result.outcome is not DialOutcome.TIMEOUT:
                        listener.handle_incoming(result)
        self.clock.schedule_every(interval, deliver, label="world.deliver_incoming")
        if len(self.listeners) == 1:
            self._schedule_factory_deliveries(interval)

    def _add_listener_presence(self, listener: Listener) -> None:
        """Give a crawler a presence in the discovery fabric.

        A NodeFinder instance is an ordinary, always-on, reachable DEVp2p
        node from the network's perspective: it enters peers' k-buckets and
        spreads through NEIGHBORS answers — which is how the paper's 30
        instances all found each other within 9 hours (§5.2).
        """
        spec = NodeSpec(
            node_id=listener.node_id,
            location=listener.location,
            tcp_port=30303,
            udp_port=30303,
            service="eth",
            capabilities=[("eth", 62), ("eth", 63)],
            client_family="geth",
            client_string="Geth/v1.7.3-stable-nodefinder/linux-amd64/go1.9.2",
            version_behaviour=None,
            peer_limit=10_000,
            metric="geth",
            network_name="mainnet",
            network_id=1,
            genesis_hash=self.mainnet.genesis_hash,
            supports_dao=True,
            reachable=True,
            arrival_day=self.day,
            uptime_fraction=1.0,
            runs_nodefinder=True,
        )
        node = SimNode(spec, self.builder, self.rng)
        node.occupancy = 0.0  # scanners never report Too many peers (§4)
        population = list(self.nodes.values())
        if population:
            node.neighbors = self.rng.sample(
                population, min(self.config.neighbor_count, len(population))
            )
            # a crawler pings the whole network within hours, so it lands
            # in a big slice of everyone's k-buckets almost immediately
            for other in self.rng.sample(population, max(1, len(population) // 4)):
                if other.neighbors:
                    other.neighbors.append(node)
        self.nodes[spec.node_id] = node

    def _schedule_factory_deliveries(self, interval: float) -> None:
        """One world-level loop: each factory dials one listener per spawn.

        A factory produces node IDs at its spawn rate regardless of how
        many crawlers are listening; each spawned identity dials a random
        listener (the fleet's merged database sees it once either way).
        """

        def deliver_abusive() -> None:
            if not self.listeners:
                return
            for factory in self.factories:
                if not factory.is_active(self.now):
                    continue
                rate = interval / (factory.spec.spawn_interval_minutes * 60.0)
                for _ in range(self._poisson(rate)):
                    listener = self.rng.choice(self.listeners)
                    listener.handle_incoming(
                        factory.dial_result(self.now, self.mainnet)
                    )

        self.clock.schedule_every(
            interval, deliver_abusive, label="world.deliver_abusive"
        )

    def enable_gc_hygiene(
        self, interval: float = SECONDS_PER_HOUR, freeze: bool = True
    ) -> None:
        """Take cyclic-GC pauses out of the crawl's measured path.

        A 100k-node world pins tens of millions of long-lived objects;
        the ambient generational collector rescans them on its own
        thresholds, stalling mid-tick.  Freeze the fully-built world into
        the permanent generation and run explicit collections on the sim
        clock instead (the bitcoin-simulator ``improve_performance``
        pattern).  GC timing has no effect on Python semantics, so this
        is observably free: the extra clock events never reorder
        neighbouring events (they get fresh sequence numbers) and draw no
        RNG.
        """
        if freeze:
            gc.collect()
            gc.freeze()
        self.clock.schedule_every(
            interval, lambda: gc.collect(), label="world.gc_hygiene"
        )

    def _poisson(self, rate: float) -> int:
        # Knuth's method is fine for small rates; cap for safety
        if rate <= 0:
            return 0
        if rate > 30:
            return max(0, int(self.rng.gauss(rate, rate**0.5)))
        limit = 2.718281828 ** (-rate)
        count, product = 0, self.rng.random()
        while product > limit:
            count += 1
            product *= self.rng.random()
        return count

    def _sample(self, population: list, count: int) -> list:
        if count >= len(population):
            return list(population)
        return self.rng.sample(population, count)

    # -- ground truth for validation ---------------------------------------------

    def ground_truth_mainnet(self, day: float) -> list[SimNode]:
        """Nodes genuinely operating the Mainnet blockchain on ``day``."""
        return [
            node
            for node in self.nodes.values()
            if node.spec.is_mainnet and node.spec.is_online(day)
        ]

    def seen_within(self, start_day: float, end_day: float) -> list[SimNode]:
        """Nodes whose lifetime intersects [start_day, end_day)."""
        return [
            node
            for node in self.nodes.values()
            if node.spec.arrival_day < end_day
            and node.spec.departure_day > start_day
        ]
