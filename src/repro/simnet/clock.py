"""Discrete-event simulation clock.

A single ordered event queue drives the whole world: NodeFinder instances,
chain growth, churn ticks, and release-calendar events all schedule
callbacks here.  Time is float seconds since the simulation epoch.

Callbacks may carry a ``label`` naming the subsystem they belong to
(``"world.grow_chain"``, ``"scanner.discovery_tick"``, ...).  When a
:class:`~repro.telemetry.profiler.Profiler` is attached to ``profiler``,
:meth:`step` runs each labelled callback inside a profiler scope, which
is how a whole simulation's event core gets attributed per subsystem.
Unprofiled runs take the ``profiler is None`` branch and pay nothing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.profiler import Profiler

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: profile scope for callbacks scheduled without a label
UNLABELLED = "clock.unlabelled"


class SimClock:
    """An event-driven clock; never moves backwards."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._queue: list[tuple[float, int, Callable[[], None], Optional[str]]] = []
        self._sequence = itertools.count()
        self._processed = 0
        #: attach a Profiler to attribute event time per callback label
        self.profiler: Optional["Profiler"] = None

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, label)
        )

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` at absolute time ``when``."""
        self.schedule(when - self.now, callback, label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        until: Optional[float] = None,
        jitter: Callable[[], float] | None = None,
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds (optionally jittered)."""
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if until is not None and self.now >= until:
                return
            callback()
            delay = interval + (jitter() if jitter else 0.0)
            self.schedule(max(delay, 0.0), tick, label)

        self.schedule(interval, tick, label)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._processed

    def step(self) -> bool:
        """Run the next event; False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback, label = heapq.heappop(self._queue)
        self.now = max(self.now, when)
        if self.profiler is None:
            callback()
        else:
            with self.profiler.scope(label or UNLABELLED):
                callback()
        self._processed += 1
        return True

    def run_until(self, deadline: float, max_events: int | None = None) -> None:
        """Run events up to ``deadline`` (events after it stay queued)."""
        count = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before reaching {deadline}"
                )
        self.now = max(self.now, deadline)

    def run_for(self, duration: float, max_events: int | None = None) -> None:
        self.run_until(self.now + duration, max_events)

    @property
    def day(self) -> int:
        """Whole simulation days elapsed."""
        return int(self.now // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> float:
        return (self.now % SECONDS_PER_DAY) / SECONDS_PER_HOUR
