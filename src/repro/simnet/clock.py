"""Discrete-event simulation clock.

A single ordered event queue drives the whole world: NodeFinder instances,
chain growth, churn ticks, and release-calendar events all schedule
callbacks here.  Time is float seconds since the simulation epoch.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class SimClock:
    """An event-driven clock; never moves backwards."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when``."""
        self.schedule(when - self.now, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        until: Optional[float] = None,
        jitter: Callable[[], float] | None = None,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds (optionally jittered)."""
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if until is not None and self.now >= until:
                return
            callback()
            delay = interval + (jitter() if jitter else 0.0)
            self.schedule(max(delay, 0.0), tick)

        self.schedule(interval, tick)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._processed

    def step(self) -> bool:
        """Run the next event; False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self.now = max(self.now, when)
        callback()
        self._processed += 1
        return True

    def run_until(self, deadline: float, max_events: int | None = None) -> None:
        """Run events up to ``deadline`` (events after it stay queued)."""
        count = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before reaching {deadline}"
                )
        self.now = max(self.now, deadline)

    def run_for(self, duration: float, max_events: int | None = None) -> None:
        self.run_until(self.now + duration, max_events)

    @property
    def day(self) -> int:
        """Whole simulation days elapsed."""
        return int(self.now // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> float:
        return (self.now % SECONDS_PER_DAY) / SECONDS_PER_HOUR
