"""Discrete-event simulation clocks.

A single ordered event queue drives the whole world: NodeFinder instances,
chain growth, churn ticks, and release-calendar events all schedule
callbacks here.  Time is float seconds since the simulation epoch.

Two interchangeable scheduler implementations share one contract
(:class:`EventClock`):

* :class:`WheelClock` — the production scheduler: a hierarchical calendar
  wheel (a near wheel of per-tick buckets plus an overflow heap for
  events beyond the wheel horizon).  Pushes into the near wheel are O(1)
  appends; the cursor only ever moves forward, so a whole simulation
  amortises to O(events + elapsed ticks).  This is the cycle-driven
  layout of the bitcoin-simulator lineage, adapted to float timestamps.
* :class:`ReferenceClock` — the original single binary heap, kept as the
  executable specification.  ``tests/test_clock_equivalence.py`` drives
  both through identical schedules and asserts identical callback order,
  ``now`` trajectories, and byte-identical crawl output.

``SimClock`` is an alias for :class:`WheelClock` — existing call sites
keep working and silently get the wheel.

The ordering contract both implementations honour exactly:

* events execute in ``(when, sequence)`` order — timestamp first, FIFO
  among events scheduled for the same instant;
* ``schedule_every(..., until=u)`` *fires at* ``u``: a tick landing
  exactly on the boundary runs before the loop stops;
* ``run_until(deadline)`` executes events with ``when <= deadline`` and
  leaves later ones queued;
* ``run_until(..., max_events=m)`` executes at most ``m`` events and
  raises only if the queue still holds work due before the deadline —
  draining on exactly the ``m``-th event is success, not failure.

Callbacks may carry a ``label`` naming the subsystem they belong to
(``"world.grow_chain"``, ``"scanner.discovery_tick"``, ...).  When a
:class:`~repro.telemetry.profiler.Profiler` is attached to ``profiler``,
:meth:`step` runs each labelled callback inside a profiler scope, which
is how a whole simulation's event core gets attributed per subsystem.
Unprofiled runs take the ``profiler is None`` branch and pay nothing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.profiler import Profiler

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: profile scope for callbacks scheduled without a label
UNLABELLED = "clock.unlabelled"

#: one queue entry: (when, sequence, callback, label) — the sequence is
#: globally unique, so tuple comparison never reaches the callback
_Entry = "tuple[float, int, Callable[[], None], Optional[str]]"


class EventClock:
    """The scheduling contract; subclasses provide the priority queue.

    Subclasses implement ``_push(entry)``, ``_pop() -> entry | None``,
    ``_peek_when() -> float | None``, and ``pending``; everything else —
    the ordering semantics, periodic loops, deadline handling — lives
    here so the two implementations cannot drift apart.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._sequence = itertools.count()
        self._processed = 0
        #: attach a Profiler to attribute event time per callback label
        self.profiler: Optional["Profiler"] = None

    # -- queue primitives (implementation-specific) -----------------------------

    def _push(self, entry) -> None:
        raise NotImplementedError

    def _pop(self):
        raise NotImplementedError

    def _peek_when(self) -> Optional[float]:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError

    # -- scheduling -------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self._push((self.now + delay, next(self._sequence), callback, label))

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` at absolute time ``when``."""
        self.schedule(when - self.now, callback, label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        until: Optional[float] = None,
        jitter: Callable[[], float] | None = None,
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds (optionally jittered).

        The ``until`` boundary is inclusive (*fire-at-until*): a tick that
        lands exactly on ``until`` still runs; only ticks strictly after
        it are dropped.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if until is not None and self.now > until:
                return
            callback()
            delay = interval + (jitter() if jitter else 0.0)
            self.schedule(max(delay, 0.0), tick, label)

        self.schedule(interval, tick, label)

    @property
    def events_processed(self) -> int:
        return self._processed

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; False when the queue is empty."""
        entry = self._pop()
        if entry is None:
            return False
        when, _, callback, label = entry
        if when > self.now:
            self.now = when
        if self.profiler is None:
            callback()
        else:
            with self.profiler.scope(label or UNLABELLED):
                callback()
        self._processed += 1
        return True

    def run_until(self, deadline: float, max_events: int | None = None) -> None:
        """Run events up to ``deadline`` (events after it stay queued).

        With ``max_events``, at most that many events execute; the guard
        raises only when the queue still holds an event due at or before
        ``deadline`` after the budget is spent — a queue that drains on
        exactly the ``max_events``-th event completes normally.
        """
        count = 0
        while True:
            when = self._peek_when()
            if when is None or when > deadline:
                break
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before reaching {deadline}"
                )
            self.step()
            count += 1
        if deadline > self.now:
            self.now = deadline

    def run_for(self, duration: float, max_events: int | None = None) -> None:
        self.run_until(self.now + duration, max_events)

    # -- time helpers -----------------------------------------------------------

    @property
    def day(self) -> int:
        """Whole simulation days elapsed."""
        return int(self.now // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> float:
        return (self.now % SECONDS_PER_DAY) / SECONDS_PER_HOUR


class ReferenceClock(EventClock):
    """The original single-binary-heap scheduler (executable spec).

    Kept verbatim as the ordering oracle: the equivalence harness runs
    every schedule against both this and :class:`WheelClock` and demands
    identical behaviour, so any future wheel optimisation has a ground
    truth to be checked against.
    """

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        self._queue: list = []

    def _push(self, entry) -> None:
        heapq.heappush(self._queue, entry)

    def _pop(self):
        if not self._queue:
            return None
        return heapq.heappop(self._queue)

    def _peek_when(self) -> Optional[float]:
        if not self._queue:
            return None
        return self._queue[0][0]

    @property
    def pending(self) -> int:
        return len(self._queue)


class WheelClock(EventClock):
    """Hierarchical calendar-wheel scheduler: near wheel + overflow heap.

    The near wheel covers ``slots`` ticks of ``tick`` seconds from the
    cursor; events inside the window land in per-tick buckets (plain list
    appends), events beyond it go to an overflow heap and migrate into
    the wheel as the cursor advances.  Within a bucket, entries are
    lazily sorted by ``(when, sequence)`` — float timestamps inside one
    tick keep exact global ordering because ``floor`` is monotone, and
    the FIFO tie-break rides on the globally unique sequence number.

    Late arrivals (an event scheduled for a time at or before the
    cursor's tick, e.g. a zero-delay reschedule after the cursor skipped
    ahead to a far-future event) clamp into the cursor bucket, where the
    within-bucket sort restores their correct position: nothing earlier
    can still be queued, so the clamp never reorders execution.
    """

    def __init__(
        self,
        start: float = 0.0,
        *,
        tick: float = 1.0,
        slots: int = 8192,
    ) -> None:
        super().__init__(start)
        if tick <= 0:
            raise SimulationError("wheel tick must be positive")
        if slots < 2:
            raise SimulationError("wheel needs at least 2 slots")
        self._tick = tick
        self._inv_tick = 1.0 / tick
        self._slots = slots
        self._buckets: list[list] = [[] for _ in range(slots)]
        self._dirty = bytearray(slots)
        #: cursor: the lowest not-yet-drained tick index; window is
        #: [_base, _base + _slots)
        self._base = int(start * self._inv_tick)
        self._near = 0
        self._overflow: list = []

    # -- placement --------------------------------------------------------------

    def _place(self, entry, t: int) -> None:
        """Drop an in-window entry into its bucket (clamped to the cursor)."""
        base = self._base
        if t < base:
            # late arrival: everything before the cursor already ran, so
            # the cursor bucket's lazy sort puts it first — order is exact
            t = base
        index = t % self._slots
        bucket = self._buckets[index]
        bucket.append(entry)
        if len(bucket) > 1:
            self._dirty[index] = 1
        self._near += 1

    def _push(self, entry) -> None:
        t = int(entry[0] * self._inv_tick)
        if t < self._base + self._slots:
            self._place(entry, t)
        else:
            heapq.heappush(self._overflow, entry)

    def _migrate(self) -> None:
        """Pull overflow events that now fit inside the window."""
        overflow = self._overflow
        horizon = self._base + self._slots
        inv_tick = self._inv_tick
        while overflow:
            t = int(overflow[0][0] * inv_tick)
            if t >= horizon:
                break
            self._place(heapq.heappop(overflow), t)

    def _current_index(self) -> Optional[int]:
        """Advance the cursor to the first non-empty bucket; None if idle."""
        if not self._near:
            if not self._overflow:
                return None
            # wheel empty: jump the window straight to the overflow min
            t = int(self._overflow[0][0] * self._inv_tick)
            if t > self._base:
                self._base = t
            self._migrate()
        buckets, slots = self._buckets, self._slots
        index = self._base % slots
        while not buckets[index]:
            self._base += 1
            if self._overflow:
                self._migrate()
            index = self._base % slots
        return index

    def _sorted_bucket(self, index: int) -> list:
        bucket = self._buckets[index]
        if self._dirty[index]:
            # descending, so the minimum pops from the end in O(1)
            bucket.sort(reverse=True)
            self._dirty[index] = 0
        return bucket

    def _pop(self):
        index = self._current_index()
        if index is None:
            return None
        self._near -= 1
        return self._sorted_bucket(index).pop()

    def _peek_when(self) -> Optional[float]:
        index = self._current_index()
        if index is None:
            return None
        return self._sorted_bucket(index)[-1][0]

    @property
    def pending(self) -> int:
        return self._near + len(self._overflow)


#: the production scheduler — existing call sites get the wheel
SimClock = WheelClock
