"""The §3 case study: instrumented Geth and Parity nodes on Mainnet.

The paper ran stock Geth v1.7.3 and Parity v1.7.9 for a week, recording
every message sent/received (Figures 2-3), connected-peer counts (Figure 4),
and disconnect reasons (Table 1).  This module reproduces that
instrumentation against a rate-calibrated model of the 2018 Mainnet edge:

* inbound connection attempts arrive at a few per second; once the peer
  limit is reached every one of them is answered with a Too-many-peers
  DISCONNECT — the source of the ~2M sent disconnects in Table 1;
* connected peers relay TRANSACTIONS continuously; the instrumented client
  re-broadcasts to all peers (Geth) or √n peers (Parity), which is why
  Geth's sent-transactions bar dwarfs Parity's (§3 observation 2);
* peers churn, so the client dips below its cap and re-dials, producing
  the received Too-many-peers and Useless-peer counts.

Rates are per-client constants calibrated so a 7-day run lands near the
paper's absolute Table 1 counts; an hour-level Poisson aggregation keeps
the run at ~10^4 events instead of 10^7.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.devp2p.messages import DisconnectReason

HOURS_PER_DAY = 24


@dataclass
class ClientProfile:
    """Rate calibration for one instrumented client."""

    name: str
    max_peers: int
    #: inbound TCP connection attempts per second (network background)
    inbound_attempts_per_sec: float
    #: outbound dial attempts per hour while below the peer cap
    outbound_dials_per_hour: float
    #: fraction of outbound dials answered Too-many-peers
    outbound_tmp_fraction: float
    #: fraction of outbound dials hitting useless (non-Mainnet) peers
    outbound_useless_fraction: float
    #: per-peer rate of received TRANSACTIONS messages, per second
    tx_msgs_per_peer_per_sec: float
    #: how many peers each locally-known transaction is forwarded to
    relay_fanout: str  # 'all' or 'sqrt'
    #: peer session mean lifetime, hours (drives churn dips in Fig. 4)
    peer_session_hours: float
    #: whether the client sends Subprotocol-error disconnects at all
    sends_subprotocol_errors: bool
    #: long-run fraction of time at max peers (§3: 99.1% / 91.5%)
    target_occupancy: float
    #: seconds to refill one vacated peer slot (drives occupancy)
    refill_seconds_per_slot: float = 8.0


GETH_PROFILE = ClientProfile(
    name="Geth/v1.7.3",
    max_peers=25,
    inbound_attempts_per_sec=3.43,
    outbound_dials_per_hour=180.0,
    outbound_tmp_fraction=0.50,
    outbound_useless_fraction=0.24,
    tx_msgs_per_peer_per_sec=0.55,
    relay_fanout="all",
    peer_session_hours=6.0,
    sends_subprotocol_errors=True,
    target_occupancy=0.991,
    refill_seconds_per_slot=8.0,
)

PARITY_PROFILE = ClientProfile(
    name="Parity/v1.7.9",
    max_peers=50,
    inbound_attempts_per_sec=2.47,
    outbound_dials_per_hour=2200.0,
    outbound_tmp_fraction=0.30,
    outbound_useless_fraction=0.45,
    tx_msgs_per_peer_per_sec=0.55,
    relay_fanout="sqrt",
    peer_session_hours=3.0,
    sends_subprotocol_errors=False,
    target_occupancy=0.915,
    refill_seconds_per_slot=18.0,
)


@dataclass
class CaseStudyResult:
    """Everything Figures 2-4 and Table 1 need."""

    profile: ClientProfile
    days: float
    messages_received: dict = field(default_factory=dict)
    messages_sent: dict = field(default_factory=dict)
    disconnects_received: dict = field(default_factory=dict)
    disconnects_sent: dict = field(default_factory=dict)
    peer_series: list = field(default_factory=list)  # (hour, peer count)
    minutes_to_max: float = 0.0
    time_at_max_fraction: float = 0.0

    def table1_rows(self) -> list[tuple[str, int, int]]:
        """(reason label, received, sent), ordered by received, desc."""
        labels = {reason.label for reason in DisconnectReason}
        rows = []
        for label in sorted(
            labels,
            key=lambda key: -(self.disconnects_received.get(key, 0)),
        ):
            received = self.disconnects_received.get(label, 0)
            sent = self.disconnects_sent.get(label, 0)
            if received or sent:
                rows.append((label, received, sent))
        return rows



def _binomial(rng: random.Random, n: int, p: float) -> int:
    """Binomial sample (Python 3.11 lacks Random.binomialvariate)."""
    if n <= 0 or p <= 0:
        return 0
    if p >= 1:
        return n
    if n > 64:
        mean, std = n * p, math.sqrt(n * p * (1 - p))
        return min(n, max(0, int(rng.gauss(mean, std) + 0.5)))
    return sum(1 for _ in range(n) if rng.random() < p)

def _bump(counter: dict, key: str, amount: int) -> None:
    if amount:
        counter[key] = counter.get(key, 0) + amount


def run_case_study(
    profile: ClientProfile, days: float = 7.0, seed: int = 42
) -> CaseStudyResult:
    """Simulate ``days`` of one instrumented client, hour by hour."""
    rng = random.Random(seed)
    result = CaseStudyResult(profile=profile, days=days)
    received, sent = result.messages_received, result.messages_sent
    disc_in, disc_out = result.disconnects_received, result.disconnects_sent

    peers = 0
    hours_at_max = 0.0
    total_hours = int(days * HOURS_PER_DAY)

    # minute-resolution warm-up: how fast the cap is reached (Fig. 4 inset)
    warm_peers = 0.0
    for minute in range(1, 121):
        inbound = profile.inbound_attempts_per_sec * 60
        outbound = profile.outbound_dials_per_hour / 60
        joins = (inbound * 0.15 + outbound * 0.35) * rng.uniform(0.7, 1.3)
        warm_peers = min(profile.max_peers, warm_peers + joins)
        result.peer_series.append((minute / 60.0, int(warm_peers)))
        if warm_peers >= profile.max_peers and result.minutes_to_max == 0.0:
            result.minutes_to_max = float(minute)
    peers = int(warm_peers)

    for hour in range(2, total_hours):
        seconds = 3600.0
        # --- churn: some sessions end; client refills from dial queue ----
        departures = _binomial(rng, peers, min(1.0, 1.0 / profile.peer_session_hours)
        ) if peers else 0
        peers -= departures
        _bump(disc_in, DisconnectReason.DISCONNECT_REQUESTED.label, departures // 2)
        _bump(disc_in, DisconnectReason.READ_TIMEOUT.label, 0)
        # --- outbound dials while below cap -------------------------------
        deficit_time = min(1.0, departures / 16.0 + (0.009 if profile.name.startswith("Geth") else 0.9))
        dials = int(profile.outbound_dials_per_hour * deficit_time * rng.uniform(0.8, 1.2))
        tmp_received = _binomial(rng, dials, profile.outbound_tmp_fraction) if dials else 0
        useless = _binomial(rng, dials, profile.outbound_useless_fraction) if dials else 0
        _bump(disc_in, DisconnectReason.TOO_MANY_PEERS.label, tmp_received)
        _bump(disc_out, DisconnectReason.USELESS_PEER.label, useless)
        joins = max(0, dials - tmp_received - useless)
        # --- inbound attempts ----------------------------------------------
        inbound = int(profile.inbound_attempts_per_sec * seconds * rng.uniform(0.9, 1.1))
        free = max(0, profile.max_peers - peers)
        accepted = min(free, max(0, inbound // 100))
        rejected = inbound - accepted
        _bump(disc_out, DisconnectReason.TOO_MANY_PEERS.label, rejected)
        peers = min(profile.max_peers, peers + joins + accepted)
        # --- subprotocol errors (§3 obs. 4) --------------------------------
        if profile.sends_subprotocol_errors:
            _bump(disc_out, DisconnectReason.SUBPROTOCOL_ERROR.label, _binomial(rng, 25, 0.9))
            _bump(disc_in, DisconnectReason.SUBPROTOCOL_ERROR.label, _binomial(rng, 3, 0.85))
        else:
            _bump(disc_in, DisconnectReason.SUBPROTOCOL_ERROR.label, _binomial(rng, 1, 0.95))
        # minor reasons, calibrated to Table 1's small rows
        _bump(disc_in, DisconnectReason.DISCONNECT_REQUESTED.label, _binomial(rng, 8, 0.7))
        _bump(disc_out, DisconnectReason.DISCONNECT_REQUESTED.label, _binomial(rng, 25, 0.65))
        _bump(disc_in, DisconnectReason.USELESS_PEER.label, _binomial(rng, 1, 0.3 if profile.name.startswith("Geth") else 0.6))
        _bump(disc_out, DisconnectReason.ALREADY_CONNECTED.label, _binomial(rng, 1, 0.45))
        _bump(disc_in, DisconnectReason.ALREADY_CONNECTED.label,
              _binomial(rng, 1, 0.2) if profile.name.startswith("Geth") else _binomial(rng, 25, 0.65))
        _bump(disc_in, DisconnectReason.READ_TIMEOUT.label, 1 if rng.random() < 0.1 else 0)
        _bump(disc_out, DisconnectReason.READ_TIMEOUT.label,
              0 if profile.name.startswith("Geth") else _binomial(rng, 150, 0.6))
        # --- protocol traffic ----------------------------------------------
        tx_in = int(peers * profile.tx_msgs_per_peer_per_sec * seconds)
        _bump(received, "Transactions", tx_in)
        if profile.relay_fanout == "all":
            fanout = peers
        else:
            fanout = int(math.sqrt(peers)) if peers else 0
        # fresh transactions worth relaying arrive at ~8/s, batched ~1/s
        _bump(sent, "Transactions", int(1.0 * seconds * fanout * rng.uniform(0.9, 1.1)))
        _bump(received, "NewBlockHashes", int(peers * seconds / 16))
        _bump(sent, "NewBlockHashes", int(peers * seconds / 40))
        _bump(received, "NewBlock", int(peers * seconds / 30))
        _bump(sent, "NewBlock", int(peers * seconds / 200))
        _bump(received, "GetBlockHeaders", int(peers * rng.uniform(4, 10)))
        _bump(sent, "BlockHeaders", int(peers * rng.uniform(4, 10)))
        _bump(sent, "GetBlockHeaders", int(peers * rng.uniform(0.5, 2)))
        _bump(received, "BlockHeaders", int(peers * rng.uniform(0.5, 2)))
        _bump(received, "GetBlockBodies", int(peers * rng.uniform(2, 6)))
        _bump(sent, "BlockBodies", int(peers * rng.uniform(2, 6)))
        _bump(received, "Status", joins + accepted + tmp_received)
        _bump(sent, "Status", joins + accepted + tmp_received)
        _bump(received, "Hello", joins + accepted + inbound // 50)
        _bump(sent, "Hello", joins + accepted + inbound // 50)
        _bump(received, "Ping", peers * 240)
        _bump(sent, "Pong", peers * 240)
        _bump(sent, "Ping", peers * 240)
        _bump(received, "Pong", peers * 240)

        # refill completes within the hour; each vacated slot costs a short
        # window below max (8s for Geth, ~18s for Parity), which is what
        # produces the 99.1% / 91.5% occupancies of §3
        below_seconds = departures * profile.refill_seconds_per_slot
        below_seconds += _binomial(rng, 10, 0.1) * profile.refill_seconds_per_slot
        hours_at_max += max(0.0, 1.0 - below_seconds / seconds)
        peers = profile.max_peers
        result.peer_series.append((float(hour), peers - (1 if rng.random() < below_seconds / seconds else 0)))

    # totals for Table 1
    result.time_at_max_fraction = hours_at_max / max(1, total_hours - 2)
    result.disconnects_received = dict(disc_in)
    result.disconnects_sent = dict(disc_out)
    total_in = sum(disc_in.values())
    total_out = sum(disc_out.values())
    result.messages_received["Disconnect"] = total_in
    result.messages_sent["Disconnect"] = total_out
    return result
