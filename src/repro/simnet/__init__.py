"""The simulated Ethereum P2P ecosystem (substitute for the 2018 Internet).

The paper measured a live network that no longer exists; this package
rebuilds it as a deterministic discrete-event world:

* :mod:`repro.simnet.clock` — event-driven simulation time;
* :mod:`repro.simnet.geo` — country / autonomous-system / latency model
  calibrated to the paper's §7.2 marginals;
* :mod:`repro.simnet.population` — the node-mix generator: DEVp2p services
  (Table 3), Ethereum networks and genesis hashes (Figure 9), clients and
  versions (Tables 4-5, Figure 10), freshness (Figure 14), reachability,
  churn, and the abusive node-ID factories of §5.4;
* :mod:`repro.simnet.node` — per-node behaviour: peer limits with
  Too-many-peers disconnects, HELLO/STATUS content, DAO-check answers,
  neighbour tables under Geth's or Parity's distance metric;
* :mod:`repro.simnet.world` — the assembled world NodeFinder crawls;
* :mod:`repro.simnet.casestudy` — the §3 single-client instrumentation
  (Figures 2-4, Table 1);
* :mod:`repro.simnet.releases` — the 2018 Geth/Parity release calendar
  driving version-adoption dynamics (Figure 10).

Every stochastic choice flows from one seeded RNG, so worlds are exactly
reproducible.
"""

from repro.simnet.clock import SimClock
from repro.simnet.geo import GeoModel
from repro.simnet.population import PopulationConfig, generate_population
from repro.simnet.node import DialOutcome, DialResult, SimNode
from repro.simnet.world import SimWorld, WorldConfig

__all__ = [
    "SimClock",
    "GeoModel",
    "PopulationConfig",
    "generate_population",
    "SimNode",
    "DialOutcome",
    "DialResult",
    "SimWorld",
    "WorldConfig",
]
