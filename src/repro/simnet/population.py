"""The node-mix generator: who is on the DEVp2p network.

Builds the static specification of every simulated node from the marginal
distributions the paper reports, so that crawling the simulated world
reproduces the *shape* of Tables 3-5 and Figures 9-14:

* DEVp2p service mix — Table 3 (eth 93.98%, bzz, les, exp, istanbul, ...);
* Ethereum network / genesis-hash mix — Figure 9 (Mainnet majority,
  Classic, Musicoin/Pirl/Ubiq, testnets, a long tail of custom networks,
  single-peer networks, and fake-Mainnet-genesis advertisers);
* client and version mix — Tables 4-5 (Geth 76.6%, Parity 17.0%,
  ethereumjs 5.2%, 30 others) with release-driven version churn;
* freshness — Figure 14 (≈32.7% stale, a cluster stuck at Byzantium+1);
* reachability (≈35% of Mainnet nodes accept inbound TCP) and churn;
* the abusive node-ID factories of §5.4.

All counts scale with ``PopulationConfig.total_nodes`` (the paper saw
356,492 HELLO-able nodes over 82 days; defaults here are ~1/60 scale).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.genesis import MAINNET_GENESIS_HASH, custom_genesis
from repro.simnet.geo import GeoModel, Location
from repro.simnet.releases import (
    MEASUREMENT_DAYS,
    default_geth_model,
    default_parity_model,
    geth_client_string,
    parity_client_string,
)

#: Table 3 — DEVp2p service shares.
SERVICE_MIX: list[tuple[str, float]] = [
    ("eth", 0.9398),
    ("bzz", 0.0185),
    ("les", 0.0124),
    ("exp", 0.0050),
    ("istanbul", 0.0046),
    ("shh", 0.0045),
    ("dbix", 0.0028),
    ("pip", 0.0027),
    ("mc", 0.0016),
    ("ele", 0.0008),
    ("unknown", 0.0001),
    ("other", 0.0072),
]

#: Figure 9 — network mix among eth-STATUS nodes (name, share, network id).
NETWORK_MIX: list[tuple[str, float, int]] = [
    ("mainnet", 0.550, 1),
    ("classic", 0.050, 1),           # same network id AND genesis as Mainnet
    ("ropsten", 0.080, 3),
    ("rinkeby", 0.040, 4),
    ("kovan", 0.030, 42),
    ("musicoin", 0.015, 7762959),
    ("pirl", 0.015, 3125659152),
    ("ubiq", 0.011, 8),
    ("ellaism", 0.006, 64),
    ("fake-mainnet", 0.032, -1),     # random network id, Mainnet genesis (§6.1)
    ("single-peer", 0.045, -2),      # unique one-node networks (1,402 in paper)
    ("custom", 0.126, -3),           # long tail of shared custom networks
]

#: Table 4 — Mainnet client families.
CLIENT_MIX: list[tuple[str, float]] = [
    ("geth", 0.766),
    ("parity", 0.170),
    ("ethereumjs", 0.052),
    ("other", 0.012),
]

#: The "30 others" — plausible 2018 minor clients.
OTHER_CLIENT_NAMES = [
    "cpp-ethereum/v1.3.0", "Aleth/v1.0.0", "EthereumJ/v1.8.2", "Harmony/v2.1",
    "Mantis/v1.0", "exp/v1.6.5", "Gubiq/v1.7.3", "pirl/v1.8.8", "Gmc/v0.8.3",
    "Gdbix/v1.5.9", "Gele/v1.6.2", "ewasm/v0.1", "teth/v0.1", "ghost/v1.0",
    "WaltonChain/v1.0", "gcm/v1.1", "go-egem/v1.0", "Gcp/v1.5", "ella/v1.0",
    "smilo/v0.9", "aqua/v0.7", "Gather/v1.0", "reth/v0.0.1", "Gexp/v1.7.2",
    "Nifty/v0.9", "trust-geth/v1.8", "akroma/v0.2", "ubq-node/v1.2",
    "musicoin-go/v1.7", "pantheon/v0.8",
]

#: eth/62-63 capability pairs by service.
SERVICE_CAPABILITIES: dict[str, list[tuple[str, int]]] = {
    "eth": [("eth", 62), ("eth", 63)],
    "les": [("les", 1), ("les", 2)],
    "pip": [("pip", 1)],
    "bzz": [("bzz", 0)],
    "shh": [("shh", 6)],
    "istanbul": [("istanbul", 64)],
    "exp": [("exp", 62), ("exp", 63)],
    "dbix": [("dbix", 62)],
    "mc": [("mc", 62)],
    "ele": [("ele", 62), ("ele", 63)],
    "unknown": [("zzz", 1)],
}


@dataclass(slots=True)
class NodeSpec:
    """Everything static about one simulated node."""

    node_id: bytes
    location: Location
    tcp_port: int
    udp_port: int
    service: str
    capabilities: list[tuple[str, int]]
    client_family: str
    client_string: str  # fixed clients; geth/parity use version_behaviour
    version_behaviour: Optional[dict]
    peer_limit: int
    metric: str  # 'geth' or 'parity' bucket metric
    # eth-specific
    network_name: Optional[str] = None
    network_id: Optional[int] = None
    genesis_hash: Optional[bytes] = None
    supports_dao: bool = True
    freshness: str = "synced"  # synced | stale | stuck-byzantium
    lag_blocks: int = 0
    # connectivity & lifecycle
    reachable: bool = True
    arrival_day: float = 0.0
    departure_day: float = MEASUREMENT_DAYS
    uptime_fraction: float = 1.0
    session_period_hours: float = 24.0
    phase: float = 0.0
    runs_nodefinder: bool = False

    @property
    def ip(self) -> str:
        return self.location.ip

    def is_online(self, day: float) -> bool:
        """Deterministic churn: alive within [arrival, departure], cycling
        on/off with the node's period and uptime fraction."""
        if not self.arrival_day <= day < self.departure_day:
            return False
        if self.uptime_fraction >= 0.999:
            return True
        period = self.session_period_hours / 24.0
        position = ((day + self.phase) % period) / period
        return position < self.uptime_fraction

    @property
    def is_mainnet(self) -> bool:
        """Operates the mainstream (non-Classic) Mainnet blockchain."""
        return (
            self.service == "eth"
            and self.network_id == 1
            and self.genesis_hash == MAINNET_GENESIS_HASH
            and self.supports_dao
        )

    @property
    def claims_mainnet_genesis(self) -> bool:
        return self.genesis_hash == MAINNET_GENESIS_HASH


@dataclass(slots=True)
class AbusiveIPSpec:
    """An IP that churns out fresh node IDs (§5.4).

    The flagship instance: 42,237 `ethereumjs-devp2p/v1.0.0` nodes on one
    IP, best hash pinned to the genesis hash, 80% seen once, none living
    past 30 minutes.
    """

    ip: str
    location: Location
    client_string: str
    spawn_interval_minutes: float
    node_lifetime_minutes: float
    arrival_day: float = 0.0
    departure_day: float = MEASUREMENT_DAYS


@dataclass
class PopulationConfig:
    """Knobs for the generator; defaults are ~1/60 of the paper's scale."""

    total_nodes: int = 6000
    seed: int = 2018
    measurement_days: float = MEASUREMENT_DAYS
    #: share of Mainnet nodes accepting inbound TCP (Table 2: 5,951/16,831)
    reachable_fraction: float = 0.35
    #: share of Mainnet snapshot nodes that are stale (Figure 14)
    stale_fraction: float = 0.327
    #: share stuck exactly at the first post-Byzantium block (141/15,454)
    stuck_byzantium_fraction: float = 0.009
    #: long-lived "core" nodes present the whole window
    core_fraction: float = 0.45
    #: abusive factories (paper: 1,256 IPs; flagship at 149.129.129.190)
    abusive_ip_count: int = 8
    abusive_spawn_interval_minutes: float = 25.0
    #: nodes running NodeFinder-like scanners to exclude (242 in paper)
    foreign_scanner_count: int = 4


def _pick_weighted(rng: random.Random, table: list[tuple]) -> tuple:
    roll = rng.random() * sum(row[1] for row in table)
    cumulative = 0.0
    for row in table:
        cumulative += row[1]
        if roll <= cumulative:
            return row
    return table[-1]


class PopulationBuilder:
    """Generates NodeSpecs; one instance per world build."""

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.geo = GeoModel(random.Random(config.seed + 1))
        self.geth_versions = default_geth_model()
        self.parity_versions = default_parity_model()
        self._custom_network_pool: list[tuple[int, bytes]] = []
        self._single_peer_counter = 0
        self._client_string_cache: dict[tuple, str] = {}

    # -- field generators --------------------------------------------------

    def _node_id(self) -> bytes:
        return self.rng.randbytes(64)

    def _ports(self) -> tuple[int, int]:
        if self.rng.random() < 0.85:
            return 30303, 30303
        port = self.rng.choice([30301, 30304, 30305, 31303, 40404, 8545 + 21758])
        return port, port

    def _lifecycle(self) -> dict:
        """Arrival/departure/uptime for one node."""
        config, rng = self.config, self.rng
        days = config.measurement_days
        if rng.random() < config.core_fraction:
            arrival, departure = 0.0, days
        else:
            arrival = rng.uniform(0, days * 0.95)
            duration = min(rng.expovariate(1 / 6.0) + 0.02, days - arrival)
            departure = arrival + duration
        roll = rng.random()
        if roll < 0.5:
            uptime, period = 1.0, 24.0
        elif roll < 0.8:
            uptime, period = rng.uniform(0.5, 0.95), rng.choice([6.0, 12.0, 24.0])
        else:
            uptime, period = rng.uniform(0.1, 0.5), rng.choice([2.0, 4.0, 8.0])
        return {
            "arrival_day": arrival,
            "departure_day": departure,
            "uptime_fraction": uptime,
            "session_period_hours": period,
            "phase": rng.random(),
        }

    def _custom_network(self) -> tuple[int, bytes]:
        """A network from the shared custom-chain pool (Zipf-ish reuse).

        Multiple genesis hashes per network id reproduce the paper's
        18,829 hashes over 4,076 ids.
        """
        rng = self.rng
        if self._custom_network_pool and rng.random() < 0.75:
            network_id, genesis = rng.choice(self._custom_network_pool)
            if rng.random() < 0.25:  # same id, different genesis
                genesis = custom_genesis(
                    f"custom-{network_id}-{rng.randrange(1 << 20)}"
                ).hash()
                self._custom_network_pool.append((network_id, genesis))
            return network_id, genesis
        network_id = rng.randrange(100, 1 << 28)
        genesis = custom_genesis(f"custom-{network_id}").hash()
        self._custom_network_pool.append((network_id, genesis))
        return network_id, genesis

    def _network_fields(self) -> dict:
        """network/genesis/DAO/freshness for an eth node."""
        rng = self.rng
        name, _, network_id = _pick_weighted(rng, NETWORK_MIX)
        fields: dict = {"network_name": name, "supports_dao": True}
        if name == "mainnet":
            fields.update(network_id=1, genesis_hash=MAINNET_GENESIS_HASH)
        elif name == "classic":
            fields.update(
                network_id=1, genesis_hash=MAINNET_GENESIS_HASH, supports_dao=False
            )
        elif name == "fake-mainnet":
            fields.update(
                network_id=rng.randrange(2, 1 << 24),
                genesis_hash=MAINNET_GENESIS_HASH,
                supports_dao=False,
            )
        elif name == "single-peer":
            self._single_peer_counter += 1
            unique = f"single-{self._single_peer_counter}"
            fields.update(
                # many private chains keep the default network id of 1,
                # which is what pollutes Ethernodes' Mainnet page (§5.3)
                network_id=1 if rng.random() < 0.55
                else rng.randrange(1 << 16, 1 << 30),
                genesis_hash=custom_genesis(unique).hash(),
                supports_dao=False,
            )
        elif name == "custom":
            network_id, genesis = self._custom_network()
            if rng.random() < 0.55:
                network_id = 1  # default-network-id private chain
            fields.update(
                network_id=network_id, genesis_hash=genesis, supports_dao=False
            )
        else:  # named altcoins / testnets
            fields.update(
                network_id=network_id,
                genesis_hash=custom_genesis(name).hash(),
                supports_dao=False,
            )
        # freshness applies to the node's own chain view
        roll = rng.random()
        config = self.config
        if name == "mainnet" and roll < config.stuck_byzantium_fraction:
            fields.update(freshness="stuck-byzantium", lag_blocks=0)
        elif roll < config.stuck_byzantium_fraction + config.stale_fraction:
            # log-uniform lag from ~30 blocks to ~3M blocks behind
            lag = int(10 ** rng.uniform(1.5, 6.5))
            fields.update(freshness="stale", lag_blocks=lag)
        else:
            fields.update(freshness="synced", lag_blocks=rng.randrange(0, 6))
        return fields

    def _client_fields(self, service: str) -> dict:
        """client family/string, peer limit, bucket metric."""
        rng = self.rng
        if service == "eth":
            family = _pick_weighted(rng, CLIENT_MIX)[0]
        elif service in ("pip",):
            family = "parity"
        elif service in ("les", "bzz", "shh"):
            family = "geth"
        else:
            family = "other"
        if family == "geth":
            behaviour = self.geth_versions.draw_behaviour(rng)
            # §6.2 / Table 5: 18.1% of Geth nodes run unstable master builds
            behaviour["unstable_build"] = rng.random() < 0.181
            return {
                "client_family": "geth",
                "client_string": "",
                "version_behaviour": behaviour,
                "peer_limit": 25,
                "metric": "geth",
            }
        if family == "parity":
            behaviour = self.parity_versions.draw_behaviour(rng)
            return {
                "client_family": "parity",
                "client_string": "",
                "version_behaviour": behaviour,
                "peer_limit": 50,
                "metric": "parity",
            }
        if family == "ethereumjs":
            version = rng.choice(["v2.1.3", "v2.1.2", "v2.0.0", "v1.0.0"])
            return {
                "client_family": "ethereumjs",
                "client_string": f"ethereumjs-devp2p/{version}/linux-x64/nodejs",
                "version_behaviour": None,
                "peer_limit": 25,
                "metric": "geth",
            }
        name = rng.choice(OTHER_CLIENT_NAMES)
        return {
            "client_family": "other",
            "client_string": f"{name}/linux-amd64",
            "version_behaviour": None,
            "peer_limit": rng.choice([25, 50, 100]),
            "metric": "geth",
        }

    def client_string_at(self, spec: NodeSpec, day: float) -> str:
        """The HELLO client id the node reports on ``day``.

        The string depends only on the node's id prefix, the version live
        on ``day``, and the unstable flag (the decorating RNG is freshly
        seeded from the id prefix each time), so results are memoised on
        that key — a crawl asks for the same node's string thousands of
        times between releases.
        """
        if spec.version_behaviour is None:
            return spec.client_string
        prefix = spec.node_id[:8]  # stable per-node decoration seed
        if spec.client_family == "geth":
            version = self.geth_versions.version_at(spec.version_behaviour, day)
            unstable = spec.version_behaviour.get("unstable_build", False)
            key = (prefix, version, unstable)
            cached = self._client_string_cache.get(key)
            if cached is None:
                cached = geth_client_string(
                    version, random.Random(prefix), unstable=unstable
                )
                self._client_string_cache[key] = cached
            return cached
        version = self.parity_versions.version_at(spec.version_behaviour, day)
        key = (prefix, version)
        cached = self._client_string_cache.get(key)
        if cached is None:
            cached = parity_client_string(version, random.Random(prefix))
            self._client_string_cache[key] = cached
        return cached

    # -- assembly ------------------------------------------------------------

    def build_node(self) -> NodeSpec:
        rng = self.rng
        service = _pick_weighted(rng, SERVICE_MIX)[0]
        capabilities = list(
            SERVICE_CAPABILITIES.get(service, SERVICE_CAPABILITIES["unknown"])
        )
        if service == "eth" and rng.random() < 0.05:
            capabilities += [("shh", 6)]  # geth --shh sidecar
        client = self._client_fields(service)
        tcp_port, udp_port = self._ports()
        spec = NodeSpec(
            node_id=self._node_id(),
            location=self.geo.assign(),
            tcp_port=tcp_port,
            udp_port=udp_port,
            service=service,
            capabilities=capabilities,
            reachable=rng.random() < self.config.reachable_fraction,
            **client,
            **self._lifecycle(),
        )
        if service == "eth":
            for key, value in self._network_fields().items():
                setattr(spec, key, value)
        return spec

    def build_abusive_ips(self) -> list[AbusiveIPSpec]:
        """The §5.4 node-ID factories; the first mimics 149.129.129.190.

        The flagship churns IDs for the whole window (paper: 42,237 node IDs
        from one IP, ≈515/day); the rest are bursty — active for a fraction
        of a day to a couple of days at a time, which is what makes the
        ≤30-minutes-per-new-node criterion bite.
        """
        factories = []
        days = self.config.measurement_days
        for index in range(self.config.abusive_ip_count):
            location = self.geo.assign()
            if index == 0:
                client = "ethereumjs-devp2p/v1.0.0/linux-x64/nodejs"
                interval = self.config.abusive_spawn_interval_minutes
                arrival, departure = 0.0, days
            else:
                client = self.rng.choice(
                    [
                        "ethereumjs-devp2p/v1.0.0/linux-x64/nodejs",
                        "ethereumjs-devp2p/v2.0.0/linux-x64/nodejs",
                        "Geth/v1.8.2-stable/linux-amd64/go1.10",
                    ]
                )
                interval = self.rng.uniform(4.0, 10.0)
                arrival = self.rng.uniform(0, days * 0.9)
                departure = arrival + self.rng.uniform(0.1, 0.5)
            factories.append(
                AbusiveIPSpec(
                    ip=location.ip,
                    location=location,
                    client_string=client,
                    spawn_interval_minutes=interval,
                    node_lifetime_minutes=self.rng.uniform(3, 25),
                    arrival_day=arrival,
                    departure_day=min(departure, days),
                )
            )
        return factories


def generate_population(
    config: PopulationConfig,
) -> tuple[list[NodeSpec], list[AbusiveIPSpec], PopulationBuilder]:
    """Generate the full ecosystem; returns (nodes, abusive IPs, builder).

    The builder is returned because version strings are time-dependent —
    the world asks it for ``client_string_at(spec, day)``.
    """
    builder = PopulationBuilder(config)
    nodes = [builder.build_node() for _ in range(config.total_nodes)]
    for index in range(config.foreign_scanner_count):
        scanner = builder.build_node()
        scanner.service = "eth"
        scanner.runs_nodefinder = True
        scanner.client_string = "Geth/v1.7.3-stable-nodefinder/linux-amd64/go1.9.2"
        scanner.version_behaviour = None
        scanner.client_family = "geth"
        nodes.append(scanner)
    return nodes, builder.build_abusive_ips(), builder
