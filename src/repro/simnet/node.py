"""Per-node behaviour: what happens when something dials a simulated node.

``SimNode`` wraps a :class:`~repro.simnet.population.NodeSpec` with the
dynamic state the crawler observes: whether the node is online, whether its
peer slots are full (the dominant "Too many peers" outcome of §3/Table 1),
its HELLO and STATUS content at a given sim time, its DAO-check answer, and
its FIND_NODE behaviour under its client's distance metric.
"""

from __future__ import annotations

import enum
import heapq
import random
from dataclasses import dataclass
from typing import Optional

from repro.chain.synthetic import SyntheticChain
from repro.devp2p.messages import DisconnectReason
from repro.discovery.enode import _cached_id_hash
from repro.discovery.distance import parity_log_distance
from repro.ethproto.forks import BYZANTIUM_BLOCK, DAO_FORK_BLOCK
from repro.simnet.clock import SECONDS_PER_DAY
from repro.simnet.population import NodeSpec, PopulationBuilder


class DialOutcome(enum.Enum):
    """How a connection attempt ended."""

    TIMEOUT = "timeout"                      # offline / unreachable
    CONNECTION_REFUSED = "refused"
    RLPX_FAILED = "rlpx-failed"              # crypto handshake failure
    DISCONNECT_BEFORE_HELLO = "disconnect-before-hello"
    HELLO_NO_STATUS = "hello-no-status"      # HELLO ok, STATUS never came
    HELLO_THEN_DISCONNECT = "hello-then-disconnect"
    FULL_HARVEST = "full-harvest"            # HELLO + STATUS (+ DAO check)

    @property
    def connected(self) -> bool:
        """A TCP connection was established (the peer is alive at all).

        TIMEOUT and CONNECTION_REFUSED mean nothing ever answered; every
        other outcome is evidence of a listening process.
        """
        return self not in (DialOutcome.TIMEOUT, DialOutcome.CONNECTION_REFUSED)

    @property
    def completed(self) -> bool:
        """The RLPx session came up and the peer spoke DEVp2p.

        This is §4's "completed dial" — the bar for joining StaticNodes.
        A refused, reset, or stalled connection is *not* completed and
        must not be re-dialed every 30 minutes.
        """
        return self in (
            DialOutcome.DISCONNECT_BEFORE_HELLO,
            DialOutcome.HELLO_NO_STATUS,
            DialOutcome.HELLO_THEN_DISCONNECT,
            DialOutcome.FULL_HARVEST,
        )


@dataclass(slots=True)
class DialResult:
    """Everything a single connection attempt yields (one NodeFinder log line)."""

    timestamp: float
    node_id: bytes
    ip: str
    tcp_port: int
    connection_type: str  # dynamic-dial | static-dial | incoming
    outcome: DialOutcome
    latency: float = 0.0
    duration: float = 0.0
    client_id: Optional[str] = None
    capabilities: Optional[list[tuple[str, int]]] = None
    listen_port: Optional[int] = None
    network_id: Optional[int] = None
    genesis_hash: Optional[bytes] = None
    total_difficulty: Optional[int] = None
    best_hash: Optional[bytes] = None
    best_block: Optional[int] = None
    disconnect_reason: Optional[DisconnectReason] = None
    dao_side: Optional[str] = None  # supports | opposes | empty
    #: chain head height of the node's network when STATUS was taken —
    #: freshness (Figure 14) is the lag against *this*, not a later head
    head_height: Optional[int] = None
    #: which harvest stage failed: connect | rlpx | hello | status | dao
    failure_stage: Optional[str] = None
    #: how it failed: refused | stalled | reset | truncated | unreachable |
    #: protocol — the fine-grained taxonomy a flat timeout conflates
    failure_detail: Optional[str] = None
    #: connection attempts this result covers (> 1 under a RetryPolicy)
    attempts: int = 1

    @property
    def got_hello(self) -> bool:
        return self.client_id is not None

    @property
    def got_status(self) -> bool:
        return self.network_id is not None


class SimNode:
    """Runtime wrapper around a NodeSpec."""

    __slots__ = (
        "spec",
        "builder",
        "id_hash",
        "id_hash_int",
        "occupancy",
        "status_reliability",
        "neighbors",
        "_rng",
    )

    def __init__(
        self, spec: NodeSpec, builder: PopulationBuilder, rng: random.Random
    ) -> None:
        self.spec = spec
        self.builder = builder
        # shared with the scanner's address-book cache: hashing here (at
        # world build, off the crawl's measured path) means every later
        # cached_id_hash/cached_id_hash_int call on this ID is a hit
        self.id_hash = _cached_id_hash(spec.node_id)
        self.id_hash_int = int.from_bytes(self.id_hash, "big")
        self._rng = random.Random(rng.getrandbits(64))
        self.occupancy = self._draw_occupancy()
        #: P(STATUS exchange succeeds | HELLO succeeded) — paper: 323,584
        #: STATUS out of 335,036 eth HELLOs ≈ 0.97 per *node*, lower per dial
        self.status_reliability = 0.93 if spec.service == "eth" else 0.0
        self.neighbors: list["SimNode"] = []

    def _draw_occupancy(self) -> float:
        """Probability that a given dial finds every peer slot taken."""
        spec, rng = self.spec, self._rng
        if spec.runs_nodefinder:
            return 0.0  # scanners accept everything (§4)
        if spec.service == "eth" and spec.network_name in ("mainnet", "classic"):
            # case study: Geth full 99.1%, Parity 91.5% of the time; dialing
            # later retries catches the brief windows, so per-dial slightly lower
            base = 0.97 if spec.client_family == "geth" else 0.90
            return min(0.99, max(0.5, rng.gauss(base, 0.04)))
        if spec.service == "eth":
            return rng.uniform(0.05, 0.6)  # small networks rarely fill up
        return rng.uniform(0.1, 0.7)

    # -- chain view -------------------------------------------------------------

    def best_block(self, world_height: int) -> int:
        spec = self.spec
        if spec.freshness == "stuck-byzantium":
            return BYZANTIUM_BLOCK + 1
        if spec.freshness == "stale":
            return max(0, world_height - spec.lag_blocks)
        return max(0, world_height - spec.lag_blocks)

    def status_for(self, chain: SyntheticChain, world_height: int) -> dict:
        """STATUS field values for this node right now."""
        best = self.best_block(world_height)
        return {
            "network_id": self.spec.network_id,
            "genesis_hash": self.spec.genesis_hash,
            "total_difficulty": chain.total_difficulty_at(best),
            "best_hash": chain.block_hash(best),
            "best_block": best,
        }

    def dao_answer(self, world_height: int) -> str:
        """The DAO-check outcome a crawler records: supports/opposes/empty."""
        if self.best_block(world_height) < DAO_FORK_BLOCK:
            return "empty"
        return "supports" if self.spec.supports_dao else "opposes"

    # -- discovery ------------------------------------------------------------

    def find_node(self, target_hash: bytes, count: int = 16) -> list["SimNode"]:
        """Answer FIND_NODE from this node's neighbour set.

        Geth-metric nodes return true XOR-nearest neighbours; Parity-metric
        nodes rank by their summed-byte log distance, whose coarse, shifted
        buckets make their answers nearly useless for a Geth-style lookup
        (§6.3) — ties are broken arbitrarily, not by real closeness.
        """
        if not self.neighbors:
            return []
        if self.spec.metric == "parity":
            target = target_hash
            return heapq.nsmallest(
                count,
                self.neighbors,
                key=lambda node: (
                    parity_log_distance(node.id_hash, target),
                    node.id_hash_int & 0xFFFF,  # arbitrary tiebreak
                ),
            )
        target_int = int.from_bytes(target_hash, "big")
        # nsmallest is documented as sorted(...)[:count] — same stable order
        return heapq.nsmallest(
            count, self.neighbors, key=lambda node: node.id_hash_int ^ target_int
        )

    # -- dialing ---------------------------------------------------------------

    def handle_connection(
        self,
        now: float,
        connection_type: str,
        chain: SyntheticChain,
        world_height: int,
        rtt: float,
        crawler_wants_dao_check: bool = True,
    ) -> DialResult:
        """Simulate one connection from a NodeFinder-style scanner.

        The scanner side never disconnects first and accepts everything;
        outcomes are driven by this node's state (paper §4 design).
        """
        spec = self.spec
        rng = self._rng
        day = now / SECONDS_PER_DAY
        node_id = spec.node_id
        ip = spec.ip
        tcp_port = spec.tcp_port
        incoming = connection_type == "incoming"
        if not spec.is_online(day) or (not incoming and not spec.reachable):
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.TIMEOUT,
                latency=rtt,
                duration=15.0,  # defaultDialTimeout
            )
        if rng.random() < 0.004:
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.CONNECTION_REFUSED,
                latency=rtt,
                duration=rtt,
            )
        if rng.random() < 0.003:  # paper: 357,710 RLPx vs 356,492 HELLO
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.DISCONNECT_BEFORE_HELLO,
                latency=rtt,
                duration=2 * rtt,
                disconnect_reason=DisconnectReason.TCP_ERROR,
            )
        if not incoming and rng.random() < self.occupancy:
            # full node: DISCONNECT(Too many peers) instead of a session
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.HELLO_THEN_DISCONNECT,
                latency=rtt,
                duration=2 * rtt,
                disconnect_reason=DisconnectReason.TOO_MANY_PEERS,
            )
        client_id = self.builder.client_string_at(spec, day)
        capabilities = list(spec.capabilities)
        if spec.service != "eth":
            # no shared eth capability: session dies as Useless peer
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.HELLO_THEN_DISCONNECT,
                latency=rtt,
                duration=3 * rtt,
                client_id=client_id,
                capabilities=capabilities,
                listen_port=tcp_port,
                disconnect_reason=DisconnectReason.USELESS_PEER,
            )
        if rng.random() > self.status_reliability:
            return DialResult(
                timestamp=now,
                node_id=node_id,
                ip=ip,
                tcp_port=tcp_port,
                connection_type=connection_type,
                outcome=DialOutcome.HELLO_NO_STATUS,
                latency=rtt,
                duration=rtt + 30.0,  # frameReadTimeout expiry
                client_id=client_id,
                capabilities=capabilities,
                listen_port=tcp_port,
                disconnect_reason=DisconnectReason.READ_TIMEOUT,
            )
        best = self.best_block(world_height)
        dao_side: Optional[str] = None
        if crawler_wants_dao_check and spec.claims_mainnet_genesis:
            dao_side = self.dao_answer(world_height)
        return DialResult(
            timestamp=now,
            node_id=node_id,
            ip=ip,
            tcp_port=tcp_port,
            connection_type=connection_type,
            outcome=DialOutcome.FULL_HARVEST,
            latency=rtt,
            duration=4 * rtt + rng.uniform(0.005, 0.1),
            client_id=client_id,
            capabilities=capabilities,
            listen_port=tcp_port,
            network_id=spec.network_id,
            genesis_hash=spec.genesis_hash,
            total_difficulty=chain.total_difficulty_at(best),
            best_hash=chain.block_hash(best),
            best_block=best,
            dao_side=dao_side,
            head_height=world_height,
        )
