"""The 2018 Geth/Parity release calendar and version-adoption model.

Section 6.2 and Figure 10 hinge on release dynamics: Geth ships a single
stable line whose adoption curves rise sharply on release day; Parity ships
weekly at mixed stable/beta states, spreading its population thin.  Days are
measured from the paper's collection start, 2018-04-18 (day 0); the window
ends 2018-07-08 (day 81).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: Length of the paper's measurement window, days.
MEASUREMENT_DAYS = 82


@dataclass(frozen=True)
class Release:
    """One client release."""

    version: str
    day: float  # days since 2018-04-18; negative = before the window
    stable: bool = True


#: Geth stable releases around the window (real calendar, to the day).
GETH_RELEASES: list[Release] = [
    Release("v1.7.1", -190, True),   # 2017-10-10, first Byzantium-ready
    Release("v1.7.2", -185, True),
    Release("v1.7.3", -127, True),   # 2017-12-12, NodeFinder's base
    Release("v1.8.0", -63, True),    # 2018-02-14
    Release("v1.8.1", -58, True),
    Release("v1.8.2", -44, True),
    Release("v1.8.3", -25, True),
    Release("v1.8.4", -2, True),     # 2018-04-16
    Release("v1.8.5", -1, False),    # pulled next day (deadlock, §6.2)
    Release("v1.8.6", 2, True),      # 2018-04-20
    Release("v1.8.7", 14, True),     # 2018-05-02
    Release("v1.8.8", 26, True),     # 2018-05-14
    Release("v1.8.9", 40, False),    # pulled (deadlock, §6.2)
    Release("v1.8.10", 47, True),    # 2018-06-04
    Release("v1.8.11", 56, True),    # 2018-06-13
    Release("v1.8.12", 78, True),    # 2018-07-05 (0.6% by window end)
]

#: Parity releases: weekly cadence, mixed channels (§6.2).
PARITY_RELEASES: list[Release] = [
    Release("v1.7.9", -160, True),
    Release("v1.7.11", -140, True),
    Release("v1.8.11", -90, True),
    Release("v1.9.5", -50, True),
    Release("v1.9.7", -30, True),
    Release("v1.10.0", -28, False),
    Release("v1.10.1", -14, False),
    Release("v1.10.2", -7, False),
    Release("v1.10.3", 7, True),
    Release("v1.10.4", 21, False),
    Release("v1.10.5", 28, False),
    Release("v1.10.6", 40, True),
    Release("v1.10.7", 54, False),
    Release("v1.10.8", 68, False),
    Release("v1.11.0", 70, False),
    Release("v1.10.9", 80, True),    # 2018-07-07 (0.1% by window end)
]

#: Pre-Byzantium stragglers (§6.2: 3.5% of Geth nodes below v1.7.1).
GETH_LEGACY_VERSIONS = ["v1.6.7", "v1.6.5", "v1.6.1", "v1.5.9", "v1.4.18"]
PARITY_LEGACY_VERSIONS = ["v1.6.10", "v1.0.0", "v1.5.12"]


class VersionAdoptionModel:
    """Assigns each node a version as a function of time.

    Every node gets an *update lag*: how long after a release it upgrades.
    A configurable fraction never updates (pinned to the version current at
    its pin day), and a smaller fraction is stuck on pre-Byzantium legacy
    versions — reproducing both the sharp Figure 10 adoption fronts and the
    long tail of §6.2.
    """

    def __init__(
        self,
        releases: list[Release],
        legacy_versions: list[str],
        stable_only: bool = True,
        never_update_fraction: float = 0.25,
        legacy_fraction: float = 0.035,
        median_lag_days: float = 6.0,
    ) -> None:
        self.releases = sorted(releases, key=lambda release: release.day)
        self.legacy_versions = legacy_versions
        self.stable_only = stable_only
        self.never_update_fraction = never_update_fraction
        self.legacy_fraction = legacy_fraction
        self.median_lag_days = median_lag_days

    def draw_behaviour(self, rng: random.Random) -> dict:
        """Sample a node's update behaviour (stored on the node spec)."""
        roll = rng.random()
        if roll < self.legacy_fraction:
            return {"kind": "legacy", "version": rng.choice(self.legacy_versions)}
        if roll < self.legacy_fraction + self.never_update_fraction:
            # pinned to whatever was current when the node was set up
            return {"kind": "pinned", "pin_day": rng.uniform(-120, 40)}
        # lognormal lag: median ~6 days, heavy tail
        lag = rng.lognormvariate(0, 0.9) * self.median_lag_days
        follows_beta = (not self.stable_only) and rng.random() < 0.5
        return {"kind": "updater", "lag_days": lag, "beta": follows_beta}

    def _eligible(self, beta_ok: bool) -> list[Release]:
        if beta_ok:
            return self.releases
        return [release for release in self.releases if release.stable]

    def version_at(self, behaviour: dict, day: float) -> str:
        """The version string a node with ``behaviour`` runs on ``day``."""
        if behaviour["kind"] == "legacy":
            return behaviour["version"]
        if behaviour["kind"] == "pinned":
            current = self._latest_by(behaviour["pin_day"], beta_ok=False)
            return current.version if current else self.legacy_versions[0]
        lag = behaviour["lag_days"]
        current = self._latest_by(day - lag, beta_ok=behaviour.get("beta", False))
        if current is None:
            return self.legacy_versions[0]
        return current.version

    def _latest_by(self, day: float, beta_ok: bool) -> Optional[Release]:
        latest = None
        for release in self._eligible(beta_ok):
            if release.day <= day:
                latest = release
        return latest

    def is_stable(self, version: str) -> bool:
        for release in self.releases:
            if release.version == version:
                return release.stable
        return True  # legacy versions were stable releases in their day


def default_geth_model() -> VersionAdoptionModel:
    return VersionAdoptionModel(
        GETH_RELEASES,
        GETH_LEGACY_VERSIONS,
        stable_only=True,
        never_update_fraction=0.22,
        legacy_fraction=0.035,
        median_lag_days=6.0,
    )


def default_parity_model() -> VersionAdoptionModel:
    # Parity's mixed channels: only 56.2% of nodes on stable builds (Tab. 5)
    return VersionAdoptionModel(
        PARITY_RELEASES,
        PARITY_LEGACY_VERSIONS,
        stable_only=False,
        never_update_fraction=0.30,
        legacy_fraction=0.05,
        median_lag_days=5.0,
    )


def geth_client_string(version: str, rng: random.Random, unstable: bool = False) -> str:
    go_version = rng.choice(["go1.9.2", "go1.10", "go1.10.1", "go1.10.2"])
    platform = rng.choice(
        ["linux-amd64", "linux-amd64", "linux-amd64", "windows-amd64", "darwin-amd64"]
    )
    commit = "%08x" % rng.getrandbits(32)
    if unstable:
        # a master build identifies as the *next* version, channel unstable
        version = _bump_patch(version)
        return f"Geth/{version}-unstable-{commit}/{platform}/{go_version}"
    return f"Geth/{version}-stable-{commit}/{platform}/{go_version}"


def _bump_patch(version: str) -> str:
    parts = version.lstrip("v").split(".")
    parts[-1] = str(int(parts[-1]) + 1)
    return "v" + ".".join(parts)


def parity_client_string(version: str, rng: random.Random) -> str:
    channel = "stable" if rng.random() < 0.6 else "beta"
    rust = rng.choice(["rustc1.24.1", "rustc1.25.0", "rustc1.26.0"])
    return f"Parity/{version}-{channel}/x86_64-linux-gnu/{rust}"
