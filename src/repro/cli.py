"""Command-line entry points: ``nodefinder <command>``.

Commands:

* ``demo``      — start a localhost network of live nodes and crawl it with
  the real RLPx/DEVp2p/eth stack;
* ``simulate``  — crawl a simulated ecosystem and print the headline
  measurements (services, clients, networks, sanitisation);
* ``casestudy`` — reproduce the §3 instrumented-client week (Table 1);
* ``distance``  — reproduce the Figure 11 distance-metric comparison;
* ``telemetry`` — summarise a crawl from its JSONL measurement journal
  (``--journal crawl.jsonl``) or a metrics-registry snapshot
  (``--metrics metrics.json``); ``demo`` writes both with the same flags;
* ``analyze``   — render the paper's tables/figures (Table 1, Table 3,
  Figure 9, Table 4, Figure 14, churn, and ``--sightings`` for the
  Figure 12 intervals) from either a measurement journal (``--journal``,
  repeatable for a fleet's per-instance or per-shard files) or a node
  database dump (``--db``); both paths produce byte-identical reports
  for the same crawl;
* ``crawl``     — run a live (optionally sharded, ``--shards N``) crawl
  against real bootstrap enodes, journaling per shard;
* ``profile``   — run an instrumented simulated crawl and print the
  per-subsystem hot-path attribution table (deterministic virtual clock
  by default, so output is byte-stable per seed; ``--wall`` for real
  wall-clock attribution);
* ``top``       — one-page shard-health view of a metrics snapshot
  (queue depths, loop lag, open breakers, journal backlog).
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    import json

    from repro.crypto.keys import PrivateKey
    from repro.fullnode import start_localhost_network
    from repro.nodefinder.wire import crawl_targets
    from repro.telemetry import EventJournal, Telemetry

    journal = EventJournal.open(args.journal) if args.journal else None
    telemetry = Telemetry(journal=journal)

    async def run() -> int:
        nodes = await start_localhost_network(args.nodes, blocks=args.blocks)
        print(f"started {len(nodes)} live nodes on 127.0.0.1")
        try:
            db = await crawl_targets(
                [node.enode for node in nodes],
                PrivateKey.generate(),
                telemetry=telemetry,
            )
            for entry in db:
                print(
                    f"  {entry.node_id.hex()[:8]}  {entry.client_id}  "
                    f"network={entry.network_id}  dao={entry.dao_side}  "
                    f"rtt={entry.median_latency or 0:.4f}s"
                )
            print(f"harvested {len(db.nodes_with_status())} STATUS messages")
        finally:
            for node in nodes:
                await node.stop()
        return 0

    try:
        return asyncio.run(run())
    finally:
        if journal is not None:
            journal.close()
            print(f"measurement journal: {args.journal} ({journal.events_written} events)")
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as stream:
                json.dump(telemetry.registry.snapshot(), stream, indent=2)
            print(f"metrics snapshot: {args.metrics}")


def _cmd_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import read_events, summarize_journal, summarize_snapshot

    if not args.journal and not args.metrics:
        print("telemetry: pass --journal crawl.jsonl and/or --metrics metrics.json",
              file=sys.stderr)
        return 2
    sections = []
    if args.journal:
        sections.append(summarize_journal(read_events(args.journal)))
    if args.metrics:
        with open(args.metrics, encoding="utf-8") as stream:
            sections.append(summarize_snapshot(json.load(stream)))
    print("\n\n".join(sections))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.ingest import replay_journals
    from repro.analysis.report import render_crawl_report, render_sightings
    from repro.nodefinder.database import NodeDB
    from repro.simnet.clock import SECONDS_PER_DAY

    if bool(args.journal) == bool(args.db):
        print("analyze: pass --journal crawl.jsonl (repeatable) or --db nodes.jsonl",
              file=sys.stderr)
        return 2
    if args.sightings and not args.journal:
        print("analyze: --sightings needs --journal (timelines are "
              "journal-derived)", file=sys.stderr)
        return 2
    if args.eclipse and not args.journal:
        print("analyze: --eclipse needs --journal (detection reads crawler "
              "identities and defence events)", file=sys.stderr)
        return 2
    replayed = None
    if args.journal:
        replayed = replay_journals(args.journal)
        db = replayed.db
        print(
            f"replayed {replayed.events_replayed} events "
            f"({replayed.dials_replayed} dials, {len(db)} peers) from "
            f"{len(args.journal)} journal(s); skipped {len(replayed.skipped)}",
            file=sys.stderr,
        )
    else:
        db = NodeDB.load_jsonl(args.db)
    total_days = args.days
    if total_days is None:
        # derived identically for both input paths, so the reports match
        last = max((entry.last_attempt for entry in db), default=0.0)
        total_days = last / SECONDS_PER_DAY
    print(render_crawl_report(db, head_height=args.head_height,
                              total_days=total_days))
    if args.sightings and replayed is not None:
        print()
        print(render_sightings(replayed.timelines.values()))
    if args.eclipse and replayed is not None:
        from repro.analysis.eclipse import detect_eclipse
        from repro.analysis.report import render_eclipse

        print()
        print(render_eclipse(detect_eclipse(replayed)))
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.crypto.keys import PrivateKey
    from repro.discovery.enode import parse_enode_url
    from repro.errors import DiscoveryError
    from repro.nodefinder.live import LiveConfig, LiveNodeFinder
    from repro.telemetry import EventJournal, Telemetry

    try:
        bootstrap = [parse_enode_url(uri) for uri in args.enode]
    except DiscoveryError as exc:
        print(f"crawl: bad --enode: {exc}", file=sys.stderr)
        return 2
    policy = None
    if args.max_shards > args.shards:
        from repro.nodefinder.reshard import ReshardPolicy

        # elastic: the reshard loop may split hot shards up to the cap
        # (and merge cold siblings back down, never below the start count)
        policy = ReshardPolicy(max_shards=args.max_shards, min_shards=args.shards)
    config = LiveConfig(
        shards=args.shards,
        lookup_interval=args.lookup_interval,
        static_dial_interval=args.static_dial_interval,
        reshard=policy,
    )
    journal = None
    shard_journals = None
    journal_opener = None
    opened: list[EventJournal] = []
    journal_dir = Path(args.journal_dir) if args.journal_dir else None
    if journal_dir is not None:
        journal_dir.mkdir(parents=True, exist_ok=True)
        if policy is not None:
            # elastic crawls journal per segment: reshards seal parents
            # and open generation-suffixed children through this opener
            def journal_opener(segment: str) -> EventJournal:
                opened_journal = EventJournal.open(
                    journal_dir / f"crawl-shard{segment}.jsonl"
                )
                opened.append(opened_journal)
                return opened_journal

        elif config.shards > 1:
            shard_journals = [
                EventJournal.open(journal_dir / f"crawl-shard{index}.jsonl")
                for index in range(config.shards)
            ]
            opened.extend(shard_journals)
        else:
            journal = EventJournal.open(journal_dir / "crawl.jsonl")
            opened.append(journal)

    async def run() -> int:
        finder = LiveNodeFinder(
            PrivateKey.generate(),
            config=config,
            telemetry=Telemetry(journal=journal) if journal else None,
            shard_journals=shard_journals,
            journal_opener=journal_opener,
        )
        await finder.start(bootstrap)
        try:
            await finder.crawl_for(args.seconds)
        finally:
            await finder.stop()
        stats = finder.stats
        print(
            f"crawled for {args.seconds:.0f}s with {finder.shard_count} shard(s): "
            f"{len(finder.db)} node IDs, {stats['dynamic_dials']} dynamic + "
            f"{stats['static_dials']} static dials, "
            f"{finder.writer.folds} writer folds"
        )
        if args.db:
            count = finder.db.dump_jsonl(args.db)
            print(f"node database: {args.db} ({count} entries)")
        return 0

    try:
        return asyncio.run(run())
    finally:
        # sealed segments are already closed; close() is idempotent
        for open_journal in opened:
            open_journal.close()
        if journal_dir is not None:
            paths = sorted(journal_dir.glob("crawl*.jsonl"))
            journals = " ".join(f"--journal {path}" for path in paths)
            print(f"measurement journals: replay with `nodefinder analyze {journals}`")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.clients import client_share_table
    from repro.analysis.ecosystem import network_stats, service_table, useless_fraction
    from repro.analysis.render import format_table
    from repro.nodefinder.defense import DefenseConfig
    from repro.nodefinder.fleet import run_fleet
    from repro.nodefinder.sanitize import sanitize
    from repro.nodefinder.scanner import NodeFinderConfig
    from repro.simnet.adversary import AdversaryCampaign, AdversaryConfig
    from repro.simnet.population import PopulationConfig
    from repro.simnet.world import SimWorld, WorldConfig

    world = SimWorld(
        WorldConfig(
            population=PopulationConfig(
                total_nodes=args.nodes, measurement_days=args.days, seed=args.seed
            )
        )
    )
    adversary = None
    if args.adversary:
        adversary = AdversaryCampaign(
            AdversaryConfig(sybil_count=args.sybils, seed=args.seed ^ 0xEC)
        )
    profiler = None
    if args.profile:
        from repro.telemetry import Profiler, TickClock

        profiler = Profiler(clock=TickClock())
    reshard = None
    if args.max_shards > args.shards:
        from repro.nodefinder.reshard import ReshardPolicy

        reshard = ReshardPolicy(max_shards=args.max_shards, min_shards=args.shards)
    fleet = run_fleet(
        world,
        instance_count=args.instances,
        days=args.days,
        config=NodeFinderConfig(
            discovery_interval=args.discovery_interval,
            shards=args.shards,
            reshard=reshard,
            defenses=DefenseConfig() if args.defenses else None,
        ),
        telemetry_dir=args.telemetry_dir,
        adversary=adversary,
        profiler=profiler,
    )
    if profiler is not None:
        from repro.telemetry import render_profile

        print(render_profile(profiler))
        print()
    if args.telemetry_dir:
        journals = " ".join(f"--journal {path}" for path in fleet.journal_paths)
        print(f"fleet telemetry: {fleet.metrics_path}; replay with "
              f"`nodefinder analyze {journals}`")
    db, report = sanitize(fleet.merged_db, fleet.own_node_ids())
    print(
        f"crawled {report.total_nodes} node IDs over {args.days} sim-days; "
        f"{len(report.abusive_node_ids)} abusive ({report.abusive_fraction:.1%}) "
        f"on {len(report.abusive_ips)} IPs removed"
    )
    print()
    print(format_table("DEVp2p services (Table 3)", ["service", "count", "share"],
                       service_table(db)))
    print()
    print(format_table("Mainnet clients (Table 4)", ["client", "count", "share"],
                       client_share_table(db.mainnet_nodes())))
    print()
    stats = network_stats(db)
    print(f"networks: {stats.distinct_network_ids} ids, "
          f"{stats.distinct_genesis_hashes} genesis hashes, "
          f"{stats.single_peer_networks} single-peer, "
          f"mainnet share {stats.mainnet_share:.1%}")
    print(f"useless-peer fraction (§6.1): {useless_fraction(db):.1%}")
    if adversary is not None:
        victim = fleet.instances[0]
        print()
        print(
            f"adversary: {len(adversary.attackers)} sybils in "
            f"{adversary.config.subnet} + {len(adversary.phantoms)} phantoms, "
            f"{adversary.answers_served} poisoned NEIGHBORS served"
        )
        print(
            f"victim table: {len(victim.table)} entries, attacker share "
            f"{adversary.table_share(victim.table):.1%}"
        )
        defense = victim.defense_snapshot()
        if args.defenses:
            print(f"defences: {defense.summary()}; "
                  f"anomaly={'yes' if defense.anomaly_detected else 'no'}")
        else:
            print("defences: off (run with --defenses to harden)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import tempfile
    import time

    from repro.nodefinder.fleet import run_fleet
    from repro.nodefinder.scanner import NodeFinderConfig
    from repro.simnet.population import PopulationConfig
    from repro.simnet.world import SimWorld, WorldConfig
    from repro.telemetry import Profiler, TickClock, render_profile

    # the default virtual clock makes "duration" count instrumented
    # operations — exactly reproducible per seed; --wall swaps in real
    # time (by reference) for machine-local hot-path hunting
    profiler = Profiler(
        clock=time.perf_counter if args.wall else TickClock(),
        sample_every=args.sample_every,
    )
    world = SimWorld(
        WorldConfig(
            population=PopulationConfig(
                total_nodes=args.nodes, measurement_days=args.days, seed=args.seed
            ),
            seed=7,
        )
    )
    config = NodeFinderConfig(
        seed=1, discovery_interval=args.discovery_interval, shards=args.shards
    )
    # journal into a scratch dir so journal.append shows up in the table
    with tempfile.TemporaryDirectory() as telemetry_dir:
        fleet = run_fleet(
            world,
            instance_count=args.instances,
            days=args.days,
            config=config,
            telemetry_dir=telemetry_dir,
            profiler=profiler,
        )
    clock_kind = "wall" if args.wall else "virtual (1 tick = 1 instrumented op)"
    print(
        f"profiled {args.instances} instance(s) x {args.days} sim-day(s) over "
        f"N={args.nodes} (seed {args.seed}, {args.shards} shard(s)); "
        f"clock: {clock_kind}"
    )
    print(f"crawl products: {len(fleet.merged_db)} NodeDB entries")
    print()
    print(render_profile(profiler))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import render_top

    with open(args.metrics, encoding="utf-8") as stream:
        snapshot = json.load(stream)
    print(render_top(snapshot))
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.analysis.render import format_table
    from repro.simnet.casestudy import GETH_PROFILE, PARITY_PROFILE, run_case_study

    for profile in (GETH_PROFILE, PARITY_PROFILE):
        result = run_case_study(profile, days=args.days)
        print(
            f"{profile.name}: reached {profile.max_peers} peers in "
            f"{result.minutes_to_max:.0f} min; at max {result.time_at_max_fraction:.1%} of the time"
        )
        print(format_table(
            f"Disconnect reasons ({profile.name})",
            ["reason", "received", "sent"],
            result.table1_rows(),
        ))
        print()
    return 0


def _cmd_distance(args: argparse.Namespace) -> int:
    from repro.analysis.distance import simulate_distance_distribution, simulate_friction

    dist = simulate_distance_distribution(trials=args.trials, hash_ids=not args.fast)
    print(f"{dist.trials} random node-ID pairs:")
    print(f"  Geth   mode distance: {dist.geth_mode()}  (paper: 256)")
    print(f"  Parity mode distance: {dist.parity_mode()}  (paper: ~224)")
    print("  distance   Geth     Parity")
    parity = dict(dist.parity.items())
    for distance in range(200, 257, 4):
        print(
            f"  {distance:>8}   {dist.geth.get(distance, 0) / dist.trials:6.3f}"
            f"   {parity.get(distance, 0) / dist.trials:6.3f}"
        )
    friction = simulate_friction()
    print(
        f"FIND_NODE usefulness: geth-table mean improvement "
        f"{friction.geth_mean_improvement:.2f} bits vs parity-table "
        f"{friction.parity_mean_improvement:.2f} bits"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nodefinder",
        description="Reproduction of 'Measuring Ethereum Network Peers' (IMC 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="crawl a live localhost network")
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--blocks", type=int, default=16)
    demo.add_argument("--journal", metavar="PATH",
                      help="write a JSONL measurement journal of the crawl")
    demo.add_argument("--metrics", metavar="PATH",
                      help="write a metrics-registry snapshot (JSON)")
    demo.set_defaults(func=_cmd_demo)

    simulate = commands.add_parser("simulate", help="crawl a simulated ecosystem")
    simulate.add_argument("--nodes", type=int, default=1000)
    simulate.add_argument("--days", type=float, default=3.0)
    simulate.add_argument("--instances", type=int, default=2)
    simulate.add_argument("--seed", type=int, default=2018)
    simulate.add_argument("--discovery-interval", type=float, default=60.0)
    simulate.add_argument("--shards", type=int, default=1,
                          help="worker shards partitioning the enode keyspace")
    simulate.add_argument("--max-shards", type=int, default=0,
                          help="elastic sharding: allow the reshard "
                               "controller to split hot shards up to this "
                               "cap (> --shards enables it)")
    simulate.add_argument("--telemetry-dir", metavar="DIR",
                          help="write per-instance journals + merged metrics here "
                               "(one journal per shard when --shards > 1)")
    simulate.add_argument("--adversary", action="store_true",
                          help="launch an eclipse/Sybil campaign against the "
                               "first crawler instance")
    simulate.add_argument("--sybils", type=int, default=48,
                          help="attacker identities for --adversary")
    simulate.add_argument("--defenses", action="store_true",
                          help="harden the crawlers (table admission, subnet "
                               "breakers, dial budget)")
    simulate.add_argument("--profile", action="store_true",
                          help="attribute the run per subsystem (deterministic "
                               "virtual clock) and print the profile table")
    simulate.set_defaults(func=_cmd_simulate)

    casestudy = commands.add_parser("casestudy", help="reproduce the §3 case study")
    casestudy.add_argument("--days", type=float, default=7.0)
    casestudy.set_defaults(func=_cmd_casestudy)

    distance = commands.add_parser("distance", help="reproduce Figure 11")
    distance.add_argument("--trials", type=int, default=20000)
    distance.add_argument("--fast", action="store_true",
                          help="sample hashes directly instead of hashing IDs")
    distance.set_defaults(func=_cmd_distance)

    telemetry = commands.add_parser(
        "telemetry", help="summarise a crawl from its journal or metrics snapshot"
    )
    telemetry.add_argument("--journal", metavar="PATH",
                           help="JSONL measurement journal written by a crawl")
    telemetry.add_argument("--metrics", metavar="PATH",
                           help="metrics-registry snapshot (JSON)")
    telemetry.set_defaults(func=_cmd_telemetry)

    analyze = commands.add_parser(
        "analyze", help="render the paper's tables/figures from a crawl artifact"
    )
    analyze.add_argument("--journal", metavar="PATH", action="append", default=[],
                         help="measurement journal to replay (repeat for a fleet)")
    analyze.add_argument("--db", metavar="PATH",
                         help="node-database dump written by NodeDB.dump_jsonl")
    analyze.add_argument("--head-height", type=int, default=0,
                         help="fallback chain head for the freshness CDF")
    analyze.add_argument("--days", type=float, default=None,
                         help="crawl window in days for churn (default: derived)")
    analyze.add_argument("--sightings", action="store_true",
                         help="append the Figure 12 sighting-interval section "
                              "(journal input only)")
    analyze.add_argument("--eclipse", action="store_true",
                         help="append the eclipse-detection section "
                              "(journal input only)")
    analyze.set_defaults(func=_cmd_analyze)

    crawl = commands.add_parser(
        "crawl", help="run a live sharded crawl against real enodes"
    )
    crawl.add_argument("--enode", metavar="URL", action="append", default=[],
                       required=True,
                       help="bootstrap enode:// URL (repeatable)")
    crawl.add_argument("--shards", type=int, default=1,
                       help="worker shards partitioning the enode keyspace")
    crawl.add_argument("--max-shards", type=int, default=0,
                       help="elastic sharding: allow the reshard controller "
                            "to split hot shards up to this cap "
                            "(> --shards enables it)")
    crawl.add_argument("--seconds", type=float, default=60.0,
                       help="crawl duration")
    crawl.add_argument("--lookup-interval", type=float, default=4.0)
    crawl.add_argument("--static-dial-interval", type=float, default=30 * 60.0)
    crawl.add_argument("--journal-dir", metavar="DIR",
                       help="write measurement journals here "
                            "(one per shard when --shards > 1)")
    crawl.add_argument("--db", metavar="PATH",
                       help="dump the node database here when done")
    crawl.set_defaults(func=_cmd_crawl)

    profile = commands.add_parser(
        "profile", help="hot-path attribution of a simulated crawl"
    )
    profile.add_argument("--nodes", type=int, default=300)
    profile.add_argument("--days", type=float, default=1.0)
    profile.add_argument("--seed", type=int, default=2018)
    profile.add_argument("--instances", type=int, default=1)
    profile.add_argument("--discovery-interval", type=float, default=60.0)
    profile.add_argument("--shards", type=int, default=1,
                         help="worker shards partitioning the enode keyspace")
    profile.add_argument("--wall", action="store_true",
                         help="time with the real wall clock instead of the "
                              "deterministic virtual clock")
    profile.add_argument("--sample-every", type=int, default=1,
                         help="time 1 in N scope entries (all entries are "
                              "still counted)")
    profile.set_defaults(func=_cmd_profile)

    top = commands.add_parser(
        "top", help="one-page shard-health view of a metrics snapshot"
    )
    top.add_argument("--metrics", metavar="PATH", required=True,
                     help="metrics-registry snapshot (JSON), e.g. the "
                          "metrics.json a fleet run exports")
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
