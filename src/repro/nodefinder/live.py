"""A live NodeFinder: the full §4 crawler over real UDP/TCP.

``LiveNodeFinder`` wires the pieces together the way the paper's deployment
did — continuous discv4 lookups feed dynamic dials; every successful dial
joins the StaticNodes list and is re-dialed on a fixed interval; stale
addresses fall off after 24 hours; all results land in the same
:class:`~repro.nodefinder.database.NodeDB` the analyses consume.

The crawler is supervised for month-long runs: each loop restarts under a
backoff policy if it crashes (crash/restart counts land in ``stats``),
repeatedly-failing enodes are backed off behind a per-peer circuit
breaker, and transient dial failures can be retried in place under a
deterministic :class:`~repro.resilience.RetryPolicy`.

Intervals are parameters (the paper's values are 4s lookups and 30-minute
re-dials); tests and examples shrink them to seconds so a localhost crawl
exercises every loop in a few wall-clock seconds.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.keys import PrivateKey
from repro.discovery.enode import ENode
from repro.discovery.protocol import DiscoveryService
from repro.nodefinder.database import NodeDB
from repro.nodefinder.wire import harvest
from repro.resilience import LoopSupervisor, PeerScoreboard, RetryPolicy

logger = logging.getLogger(__name__)


@dataclass
class LiveConfig:
    """Timers for a live crawl; defaults are the paper's, shrink for tests."""

    lookup_interval: float = 4.0
    static_dial_interval: float = 30 * 60.0
    stale_address_age: float = 24 * 3600.0
    max_active_dials: int = 16   # Geth's maxActiveDialTasks
    dial_timeout: float = 5.0
    #: in-place retry for transport-level dial failures; None disables
    retry: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay=0.2)
    )
    #: consecutive transport failures before an enode's breaker opens
    breaker_threshold: int = 3
    #: seconds an open breaker skips dials before admitting a probe
    breaker_cooldown: float = 300.0
    #: restart budget for crashed crawler loops; None → package default
    supervisor_policy: Optional[RetryPolicy] = None


class LiveNodeFinder:
    """One live crawler instance."""

    def __init__(
        self,
        private_key: PrivateKey | None = None,
        config: LiveConfig | None = None,
        host: str = "127.0.0.1",
        clock: Callable[[], float] | None = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.private_key = private_key or PrivateKey.generate()
        self.config = config or LiveConfig()
        self.host = host
        #: one injectable clock drives redial scheduling, record timestamps,
        #: stale-address pruning, and breaker cooldowns, so tests can advance
        #: time without sleeping; monotonic by default (wall-clock jumps must
        #: not expire or re-schedule dials)
        self.clock = clock if clock is not None else time.monotonic
        #: draws retry jitter; injectable for reproducible backoff schedules
        self.rng = rng
        self.db = NodeDB()
        self.discovery: Optional[DiscoveryService] = None
        #: node id -> (enode, next static dial time)
        self.static_nodes: dict[bytes, tuple[ENode, float]] = {}
        self.breakers = PeerScoreboard(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
        )
        self._supervisors: list[LoopSupervisor] = []
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        self._dial_semaphore = asyncio.Semaphore(self.config.max_active_dials)
        self._dialed_once: set[bytes] = set()
        self.stats = {
            "lookups": 0,
            "dynamic_dials": 0,
            "static_dials": 0,
            "dial_failures": 0,
            "breaker_skips": 0,
            "loop_crashes": 0,
            "loop_restarts": 0,
        }

    async def start(self, bootstrap: list[ENode]) -> "LiveNodeFinder":
        self.discovery = DiscoveryService(
            self.private_key, host=self.host, bootstrap_nodes=list(bootstrap)
        )
        await self.discovery.listen()
        for node in bootstrap:
            await self.discovery.bond(node)
        for name, loop in (
            ("discovery", self._discovery_loop),
            ("static", self._static_loop),
        ):
            supervisor = LoopSupervisor(
                name,
                loop,
                policy=self.config.supervisor_policy,
                rng=self.rng,
                on_crash=lambda exc: self._count("loop_crashes"),
                on_restart=lambda: self._count("loop_restarts"),
            )
            self._supervisors.append(supervisor)
            self._tasks.append(asyncio.ensure_future(supervisor.run()))
        return self

    def _count(self, key: str) -> None:
        self.stats[key] += 1

    async def stop(self) -> None:
        self._stopping = True
        pending: set[asyncio.Task] = set(self._tasks)
        while pending:
            # re-cancel until every loop actually finishes: a cancellation
            # delivered while a dial sits inside asyncio.wait_for can be
            # absorbed by the wait_for timeout/completion race (fixed
            # upstream in 3.12), leaving the loop alive after one cancel
            for task in pending:
                task.cancel()
            _, pending = await asyncio.wait(pending, timeout=1.0)
        # no except clause here: asyncio.wait never raises, and a crashed
        # (non-cancelled) loop is surfaced instead of silently dropped
        for task in self._tasks:
            if task.done() and not task.cancelled() and task.exception():
                logger.warning("crawler task %r died with %r", task, task.exception())
        if self.discovery is not None:
            self.discovery.close()

    # -- loops -------------------------------------------------------------

    async def _discovery_loop(self) -> None:
        assert self.discovery is not None
        while not self._stopping:
            target = PrivateKey.generate().public_key.to_bytes()
            found = await self.discovery.lookup(target)
            self.stats["lookups"] += 1
            fresh = [
                node
                for node in found
                if node.node_id not in self.static_nodes
                and node.node_id != self.discovery.node_id
                and node.node_id not in self._dialed_once
            ]
            if fresh:
                # exception-safe fan-out: one crashing dial must not cancel
                # its siblings or kill the loop
                outcomes = await asyncio.gather(
                    *(self._dial(node, "dynamic-dial") for node in fresh),
                    return_exceptions=True,
                )
                for node, outcome in zip(fresh, outcomes):
                    if isinstance(outcome, asyncio.CancelledError):
                        raise outcome
                    if isinstance(outcome, BaseException):
                        self.stats["dial_failures"] += 1
                        logger.warning(
                            "dynamic dial of %s crashed: %r",
                            node.short_id(),
                            outcome,
                        )
            await asyncio.sleep(self.config.lookup_interval)

    async def _static_loop(self) -> None:
        while not self._stopping:
            now = self.clock()
            due = [
                node
                for node, (enode, next_dial) in list(self.static_nodes.items())
                if next_dial <= now
            ]
            for node_id in due:
                enode, _ = self.static_nodes[node_id]
                self.static_nodes[node_id] = (
                    enode,
                    now + self.config.static_dial_interval,
                )
                try:
                    await self._dial(enode, "static-dial")
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.stats["dial_failures"] += 1
                    logger.warning(
                        "static dial of %s crashed: %r", enode.short_id(), exc
                    )
            self._prune_stale()
            await asyncio.sleep(
                min(1.0, self.config.static_dial_interval / 10)
            )

    def _prune_stale(self) -> None:
        horizon = self.clock() - self.config.stale_address_age
        for entry in list(self.db):
            if 0 <= entry.last_success < horizon:
                self.static_nodes.pop(entry.node_id, None)
                self.breakers.forget(entry.node_id)

    # -- dialing ---------------------------------------------------------------

    async def _dial(self, target: ENode, connection_type: str) -> None:
        if not self.breakers.allow(target.node_id):
            self.stats["breaker_skips"] += 1
            return
        async with self._dial_semaphore:
            self._dialed_once.add(target.node_id)
            result = await harvest(
                target,
                self.private_key,
                connection_type=connection_type,
                dial_timeout=self.config.dial_timeout,
                clock=self.clock,
                retry=self.config.retry,
                retry_rng=self.rng,
            )
        key = "dynamic_dials" if connection_type == "dynamic-dial" else "static_dials"
        self.stats[key] += 1
        self.db.observe(result)
        if result.outcome.completed:
            self.breakers.record_success(target.node_id)
            # §4: completed dials join StaticNodes for 30-minute re-dials
            self.static_nodes.setdefault(
                target.node_id,
                (target, self.clock() + self.config.static_dial_interval),
            )
        else:
            self.breakers.record_failure(target.node_id)

    async def crawl_for(self, seconds: float) -> NodeDB:
        """Convenience: run the loops for a wall-clock duration."""
        await asyncio.sleep(seconds)
        return self.db
