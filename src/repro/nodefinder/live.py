"""A live NodeFinder: the full §4 crawler over real UDP/TCP.

``LiveNodeFinder`` wires the pieces together the way the paper's deployment
did — continuous discv4 lookups feed dynamic dials; every successful dial
joins the StaticNodes list and is re-dialed on a fixed interval; stale
addresses fall off after 24 hours; all results land in the same
:class:`~repro.nodefinder.database.NodeDB` the analyses consume.

The crawler is supervised for month-long runs: each loop restarts under a
backoff policy if it crashes (crash/restart counts land in ``stats``),
repeatedly-failing enodes are backed off behind a per-peer circuit
breaker, and transient dial failures can be retried in place under a
deterministic :class:`~repro.resilience.RetryPolicy`.

Intervals are parameters (the paper's values are 4s lookups and 30-minute
re-dials); tests and examples shrink them to seconds so a localhost crawl
exercises every loop in a few wall-clock seconds.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.keys import PrivateKey
from repro.discovery.enode import ENode
from repro.discovery.protocol import DiscoveryService
from repro.nodefinder.database import NodeDB
from repro.nodefinder.reshard import (
    DynamicShardPlan,
    ReshardController,
    ReshardCoordinator,
    ReshardPolicy,
)
from repro.nodefinder.shard import NodeDBWriter, ShardPlan, ShardState
from repro.nodefinder.wire import harvest
from repro.resilience import LoopSupervisor, PeerScoreboard, RetryPolicy
from repro.telemetry import EventJournal, Telemetry

logger = logging.getLogger(__name__)


@dataclass
class LiveConfig:
    """Timers for a live crawl; defaults are the paper's, shrink for tests."""

    lookup_interval: float = 4.0
    static_dial_interval: float = 30 * 60.0
    stale_address_age: float = 24 * 3600.0
    max_active_dials: int = 16   # Geth's maxActiveDialTasks
    dial_timeout: float = 5.0
    #: in-place retry for transport-level dial failures; None disables
    retry: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay=0.2)
    )
    #: consecutive transport failures before an enode's breaker opens
    breaker_threshold: int = 3
    #: seconds an open breaker skips dials before admitting a probe
    breaker_cooldown: float = 300.0
    #: restart budget for crashed crawler loops; None → package default
    supervisor_policy: Optional[RetryPolicy] = None
    #: worker shards partitioning the enode keyspace by node-ID prefix;
    #: 1 keeps the classic single static loop, N>1 runs one dial loop per
    #: shard, all folding through one NodeDB writer queue
    shards: int = 1
    #: dynamic-dial targets a shard loop drains from its queue per pass
    shard_batch: int = 8
    #: elastic sharding: when set, a supervised reshard loop polls the
    #: shard-health gauges and may split hot shards / merge cold siblings
    #: mid-crawl with a drain-seal-handoff protocol (see
    #: :mod:`repro.nodefinder.reshard`); None keeps the static plan
    reshard: Optional[ReshardPolicy] = None


class LiveNodeFinder:
    """One live crawler instance."""

    def __init__(
        self,
        private_key: PrivateKey | None = None,
        config: LiveConfig | None = None,
        host: str = "127.0.0.1",
        clock: Callable[[], float] | None = None,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
        shard_journals: Optional[list[EventJournal]] = None,
        harvester: Optional[Callable] = None,
        journal_opener: Optional[Callable[[str], EventJournal]] = None,
    ) -> None:
        self.private_key = private_key or PrivateKey.generate()
        self.config = config or LiveConfig()
        self.host = host
        #: one injectable clock drives redial scheduling, record timestamps,
        #: stale-address pruning, and breaker cooldowns, so tests can advance
        #: time without sleeping; monotonic by default (wall-clock jumps must
        #: not expire or re-schedule dials)
        self.clock = clock if clock is not None else time.monotonic
        #: draws retry jitter; injectable for reproducible backoff schedules
        self.rng = rng
        #: the crawler is a measurement instrument, so it always carries a
        #: *real* registry (``stats`` reads off it); pass your own Telemetry
        #: to add a journal or share a registry across components
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.db = NodeDB()
        self.discovery: Optional[DiscoveryService] = None
        #: node id -> (enode, next static dial time)
        self.static_nodes: dict[bytes, tuple[ENode, float]] = {}
        self.breakers = PeerScoreboard(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
            on_transition=self.telemetry.record_breaker,
        )
        self._supervisors: list[LoopSupervisor] = []
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        self._dial_semaphore = asyncio.Semaphore(self.config.max_active_dials)
        self._dialed_once: set[bytes] = set()
        #: injectable dial function (harvest-compatible); benchmarks and
        #: tests swap in a stub to exercise the scheduler without sockets
        self._harvest = harvester if harvester is not None else harvest
        # -- sharding -------------------------------------------------------
        shards = max(1, int(self.config.shards))
        policy = self.config.reshard
        if journal_opener is not None and shard_journals is not None:
            raise ValueError(
                "journal_opener and shard_journals are mutually exclusive"
            )
        if policy is not None and shard_journals is not None:
            raise ValueError(
                "elastic crawls journal per segment: pass journal_opener, "
                "not a fixed shard_journals list"
            )
        # an elastic crawl (or a segment-keyed journal opener) switches to
        # the dynamic plan; its generation-0 ranges match the static plan
        if policy is not None or journal_opener is not None:
            self.plan: ShardPlan | DynamicShardPlan = DynamicShardPlan(shards)
        else:
            self.plan = ShardPlan(shards)
        self.controller: Optional[ReshardController] = None
        if policy is not None:
            assert isinstance(self.plan, DynamicShardPlan)
            self.controller = ReshardController(policy, self.plan)
        self.coordinator = ReshardCoordinator(journal_opener)
        #: every NodeDB/CrawlStats mutation goes through this single writer
        #: (queued mode while sharded loops run; SHARD-SAFE pins the rule)
        self.writer = NodeDBWriter(self.db, telemetry=self.telemetry)
        self._shards: list[ShardState] = []
        if shard_journals is not None and len(shard_journals) != shards:
            raise ValueError(
                f"{len(shard_journals)} shard journals for {shards} shards"
            )
        if isinstance(self.plan, DynamicShardPlan):
            # elastic mode always runs shard loops (even at one shard —
            # the controller may split it), labeled by stable segment id
            for index, shard_range in enumerate(self.plan.ranges):
                self._shards.append(
                    self._make_shard_state(index, shard_range.segment)
                )
        elif shards > 1:
            for index in range(shards):
                if shard_journals is not None:
                    # own journal, shared metrics registry: counters
                    # aggregate exactly as unsharded while each shard's
                    # event stream stays separable (and re-mergeable)
                    shard_telemetry = Telemetry(
                        registry=self.telemetry.registry,
                        journal=shard_journals[index],
                        clock=self.clock,
                        shard=str(index),
                        profiler=self.telemetry.profiler,
                        recorder=self.telemetry.recorder,
                    )
                else:
                    shard_telemetry = self.telemetry
                shard_breakers = PeerScoreboard(
                    failure_threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown,
                    clock=self.clock,
                    on_transition=shard_telemetry.record_breaker,
                )
                self._shards.append(
                    ShardState(
                        index,
                        shard_telemetry,
                        shard_breakers,
                        self.config.max_active_dials,
                    )
                )

    @property
    def shard_count(self) -> int:
        return self.plan.shards

    def _make_shard_state(self, index: int, segment: str) -> ShardState:
        """Build one elastic shard: segment journal, fresh breakers."""
        journal = (
            self.coordinator.open_segment(segment)
            if self.coordinator.journaled
            else None
        )
        if journal is not None:
            shard_telemetry = Telemetry(
                registry=self.telemetry.registry,
                journal=journal,
                clock=self.clock,
                shard=segment,
                profiler=self.telemetry.profiler,
                recorder=self.telemetry.recorder,
            )
        else:
            shard_telemetry = self.telemetry
        shard_breakers = PeerScoreboard(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
            on_transition=shard_telemetry.record_breaker,
        )
        return ShardState(
            index,
            shard_telemetry,
            shard_breakers,
            self.config.max_active_dials,
            segment=segment,
        )

    @property
    def stats(self) -> dict[str, int]:
        """The crawler's counters, read live off the telemetry registry."""
        telemetry = self.telemetry
        return {
            "lookups": int(telemetry.lookups.value),
            # shard workers emit under their own ``shard`` label; total()
            # folds every worker's series into the crawl-wide count
            "dynamic_dials": int(
                telemetry.scheduled_dials.total(type="dynamic-dial")
            ),
            "static_dials": int(
                telemetry.scheduled_dials.total(type="static-dial")
            ),
            "dial_failures": int(telemetry.dial_failures.total()),
            "breaker_skips": int(telemetry.breaker_skips.total()),
            "loop_crashes": int(telemetry.loop_crashes.value),
            "loop_restarts": int(telemetry.loop_restarts.value),
            "loop_deaths": int(telemetry.loop_deaths.value),
        }

    async def start(self, bootstrap: list[ENode]) -> "LiveNodeFinder":
        self.discovery = DiscoveryService(
            self.private_key,
            host=self.host,
            bootstrap_nodes=list(bootstrap),
            telemetry=self.telemetry,
        )
        await self.discovery.listen()
        for node in bootstrap:
            await self.discovery.bond(node)
        loops: list[tuple[str, Callable]] = [
            ("discovery", self._discovery_loop)
        ]
        if not self._shards:
            loops.append(("static", self._static_loop))
        else:
            # sharded mode: the writer serializes folds behind a queue and
            # each shard gets its own supervised dial loop
            self.writer.start()
        if self.controller is not None:
            loops.append(("reshard", self._reshard_loop))
        for name, loop in loops:
            self._spawn_loop(name, loop)
        for shard in self._shards:
            self._spawn_shard_loop(shard)
        if isinstance(self.plan, DynamicShardPlan):
            self._publish_plan()
        return self

    def _spawn_loop(self, name: str, loop: Callable) -> asyncio.Task:
        supervisor = LoopSupervisor(
            name,
            loop,
            policy=self.config.supervisor_policy,
            rng=self.rng,
            on_crash=lambda exc, name=name: self.telemetry.record_loop_crash(
                name, repr(exc)
            ),
            on_restart=lambda name=name: self.telemetry.record_loop_restart(
                name
            ),
        )
        self._supervisors.append(supervisor)
        task = asyncio.ensure_future(supervisor.run())
        task.add_done_callback(
            lambda task, name=name: self._task_died(name, task)
        )
        self._tasks.append(task)
        return task

    def _spawn_shard_loop(self, shard: ShardState) -> None:
        shard.task = self._spawn_loop(
            f"shard-{shard.label}", lambda shard=shard: self._shard_loop(shard)
        )

    def _task_died(self, name: str, task: asyncio.Task) -> None:
        """A supervised loop ended for good — count it if it crashed.

        Fires when the supervisor's restart budget is spent (or it raised
        outside its own loop); a cancelled task is a normal shutdown.
        """
        if task.cancelled() or task.exception() is None:
            return
        self.telemetry.record_loop_death(name, repr(task.exception()))
        logger.warning(
            "crawler %s loop died with %r", name, task.exception()
        )

    async def stop(self) -> None:
        self._stopping = True
        pending: set[asyncio.Task] = set(self._tasks)
        while pending:
            # re-cancel until every loop actually finishes: a cancellation
            # delivered while a dial sits inside asyncio.wait_for can be
            # absorbed by the wait_for timeout/completion race (fixed
            # upstream in 3.12), leaving the loop alive after one cancel
            for task in pending:
                task.cancel()
            _, pending = await asyncio.wait(pending, timeout=1.0)
        # no except clause here: asyncio.wait never raises, and a crashed
        # (non-cancelled) loop is surfaced by the done-callback instead of
        # silently dropped; give those callbacks a tick to run
        await asyncio.sleep(0)
        # drain queued folds before shutdown so the database reflects every
        # dial the shards completed
        await self.writer.close()
        # elastic runs: segments sealed mid-crawl are already closed; the
        # still-live generation's journals close here
        self.coordinator.close_open_segments()
        if self.discovery is not None:
            self.discovery.close()

    # -- loops -------------------------------------------------------------

    async def _discovery_loop(self) -> None:
        assert self.discovery is not None
        while not self._stopping:
            target = PrivateKey.generate().public_key.to_bytes()
            found = await self.discovery.lookup(target)
            self.telemetry.lookups.inc()
            fresh = [
                node
                for node in found
                if not self._known_static(node.node_id)
                and node.node_id != self.discovery.node_id
                and node.node_id not in self._dialed_once
            ]
            if self._shards:
                # route each target to the shard owning its keyspace slice;
                # the shard loop batches the draws
                for node in fresh:
                    self._dialed_once.add(node.node_id)
                    shard = self._shards[self.plan.shard_of(node.node_id)]
                    shard.queue.put_nowait(node)
                    shard.telemetry.shard_queue_depth.labels(
                        shard=shard.label
                    ).set(float(shard.queue.qsize()))
                await asyncio.sleep(self.config.lookup_interval)
                continue
            if fresh:
                # exception-safe fan-out: one crashing dial must not cancel
                # its siblings or kill the loop
                outcomes = await asyncio.gather(
                    *(self._dial(node, "dynamic-dial") for node in fresh),
                    return_exceptions=True,
                )
                for node, outcome in zip(fresh, outcomes):
                    if isinstance(outcome, asyncio.CancelledError):
                        raise outcome
                    if isinstance(outcome, BaseException):
                        self.telemetry.record_dial_crash(repr(outcome))
                        logger.warning(
                            "dynamic dial of %s crashed: %r",
                            node.short_id(),
                            outcome,
                        )
            await asyncio.sleep(self.config.lookup_interval)

    def _next_due_static(self, now: float) -> Optional[tuple[bytes, ENode]]:
        """The next static node due at ``now``, read from live state."""
        for node_id, (enode, next_dial) in self.static_nodes.items():
            if next_dial <= now:
                return node_id, enode
        return None

    async def _static_loop(self) -> None:
        while not self._stopping:
            now = self.clock()
            due = self._next_due_static(now)
            if due is not None:
                node_id, enode = due
                # reschedule before the dial await: while the dial is in
                # flight other loops may add/prune statics, and the next
                # iteration re-derives the due set from that fresh state
                # instead of acting on a snapshot taken before the await
                self.static_nodes[node_id] = (
                    enode,
                    now + self.config.static_dial_interval,
                )
                try:
                    await self._dial(enode, "static-dial")
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.telemetry.record_dial_crash(repr(exc))
                    logger.warning(
                        "static dial of %s crashed: %r", enode.short_id(), exc
                    )
                self._refresh_health(self.telemetry, self.breakers, now)
                continue
            self._prune_stale()
            self._refresh_health(self.telemetry, self.breakers, now)
            await asyncio.sleep(
                min(1.0, self.config.static_dial_interval / 10)
            )

    async def _shard_loop(self, shard: ShardState) -> None:
        """One shard's dial loop: due statics plus a batched queue draw.

        The shard touches only its own :class:`ShardState` and the shared
        :class:`NodeDBWriter` — no cross-shard state, no locks.
        """
        poll = min(1.0, self.config.static_dial_interval / 10)
        # a reshard handoff retires the loop: it finishes the pass in
        # flight (draining its dials) and returns cleanly, which the
        # supervisor treats as a normal exit
        while not (self._stopping or shard.retired):
            now = self.clock()
            jobs: list[tuple[ENode, str]] = []
            for node_id, (enode, next_dial) in list(shard.static_nodes.items()):
                if next_dial <= now:
                    shard.static_nodes[node_id] = (
                        enode,
                        now + self.config.static_dial_interval,
                    )
                    jobs.append((enode, "static-dial"))
            try:
                drawn = 0
                if not jobs:
                    # idle: block up to one poll interval for the first
                    # queued target (this is also the loop's pacing sleep)
                    node = await asyncio.wait_for(
                        shard.queue.get(), timeout=poll
                    )
                    jobs.append((node, "dynamic-dial"))
                    drawn = 1
                # with work in hand, only drain what is already queued,
                # up to the batch size — never park on an empty queue
                while drawn < self.config.shard_batch:
                    jobs.append((shard.queue.get_nowait(), "dynamic-dial"))
                    drawn += 1
            except (asyncio.TimeoutError, asyncio.QueueEmpty):
                pass
            shard.telemetry.shard_queue_depth.labels(
                shard=shard.label
            ).set(float(shard.queue.qsize()))
            if jobs:
                # exception-safe fan-out, same contract as the unsharded loop
                outcomes = await asyncio.gather(
                    *(
                        self._shard_dial(shard, enode, kind)
                        for enode, kind in jobs
                    ),
                    return_exceptions=True,
                )
                for (enode, kind), outcome in zip(jobs, outcomes):
                    if isinstance(outcome, asyncio.CancelledError):
                        raise outcome
                    if isinstance(outcome, BaseException):
                        shard.telemetry.record_dial_crash(repr(outcome))
                        logger.warning(
                            "shard %d %s of %s crashed: %r",
                            shard.index,
                            kind,
                            enode.short_id(),
                            outcome,
                        )
            self._prune_shard(shard)
            shard.last_lag = self.clock() - now
            self._refresh_health(
                shard.telemetry,
                shard.breakers,
                now,
                shard.queue.qsize(),
                shard=shard.label,
            )

    def _refresh_health(
        self,
        telemetry: Telemetry,
        breakers: PeerScoreboard,
        pass_started: float,
        queue_depth: Optional[int] = None,
        shard: Optional[str] = None,
    ) -> None:
        """One loop pass done: publish how this worker is keeping up.

        Lag is the pass's wall duration — how far the loop trails the
        clock it schedules against; a healthy worker stays near its poll
        interval, a drowning one grows with its dial backlog.  The shard
        label is explicit: a shard loop sharing the crawl-wide telemetry
        (no per-shard journals) still owns its health row.
        """
        telemetry.record_shard_health(
            queue_depth=queue_depth,
            lag=self.clock() - pass_started,
            open_breakers=breakers.open_count,
            journal_backlog=(
                telemetry.journal.backlog if telemetry.journal is not None else None
            ),
            shard=shard,
        )

    # -- elastic resharding ------------------------------------------------

    async def _reshard_loop(self) -> None:
        """Poll the shard-health gauges and apply split/merge decisions.

        Supervised like every other crawler loop; the controller applies
        hysteresis and cooldown, so a healthy crawl makes this a cheap
        periodic no-op.
        """
        assert self.controller is not None
        interval = self.controller.policy.interval
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping:
                return
            loads = [float(shard.queue.qsize()) for shard in self._shards]
            lags = [shard.last_lag for shard in self._shards]
            ops = self.controller.observe(loads, now=self.clock(), lags=lags)
            for action, index in ops:
                await self._apply_reshard_live(action, index)
            if ops:
                self._publish_plan()

    async def _apply_reshard_live(self, action: str, index: int) -> None:
        """One live handoff: drain the parent loops, seal, split/merge.

        Protocol order matters:

        1. flag the parent shard(s) ``retired`` and await their loop
           tasks — the loops finish the pass in flight (all dials fold
           through the writer queue) and return cleanly;
        2. with the parents quiescent, mutate the plan and seal their
           journal segments with the ``reshard`` record (no awaits from
           here to step 4, so no loop observes a half-built plan);
        3. hand off: statics and queued targets transfer to the child
           owning their prefix; children get fresh breaker scoreboards
           (failure history does not survive a handoff — a deliberate
           reset, the cooldowns re-learn quickly);
        4. splice the children into the shard list, renumber positional
           indices, and spawn their supervised loops.
        """
        assert self.controller is not None
        plan = self.plan
        assert isinstance(plan, DynamicShardPlan)
        step = self.controller.step - 1
        count = 1 if action == "split" else 2
        parents = self._shards[index : index + count]
        for shard in parents:
            shard.retired = True
        drains = [shard.task for shard in parents if shard.task is not None]
        if drains:
            await asyncio.gather(*drains, return_exceptions=True)
        if self._stopping:
            return
        # ---- synchronous from here until the new loops spawn ----
        if action == "split":
            parent, children = plan.split(index)
            parent_ranges = [parent]
            child_ranges = list(children)
        else:
            (left, right), child = plan.merge(index)
            parent_ranges = [left, right]
            child_ranges = [child]
        generation = plan.generation
        children_spans = [(child.lo, child.hi) for child in child_ranges]
        for shard, parent_range in zip(parents, parent_ranges):
            if self.coordinator.journaled:
                self.coordinator.seal_segment(
                    shard.telemetry,
                    parent_range.segment,
                    action=action,
                    step=step,
                    generation=generation,
                    parent=(parent_range.lo, parent_range.hi),
                    children=children_spans,
                )
            else:
                shard.telemetry.record_reshard(
                    action=action,
                    step=step,
                    generation=generation,
                    parent=(parent_range.lo, parent_range.hi),
                    children=children_spans,
                )
        children_states = [
            self._make_shard_state(index + offset, child.segment)
            for offset, child in enumerate(child_ranges)
        ]

        def owning_child(node_id: bytes) -> ShardState:
            offset = plan.shard_of(node_id) - index
            return children_states[max(0, min(offset, len(children_states) - 1))]

        for shard in parents:
            for node_id, entry in shard.static_nodes.items():
                owning_child(node_id).static_nodes[node_id] = entry
            while True:
                try:
                    node = shard.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                owning_child(node.node_id).queue.put_nowait(node)
        self._shards[index : index + count] = children_states
        for position, shard in enumerate(self._shards):
            shard.index = position
        for shard in children_states:
            self._spawn_shard_loop(shard)

    def _publish_plan(self) -> None:
        """Refresh the live-plan gauges (``nodefinder top`` renders them)."""
        assert isinstance(self.plan, DynamicShardPlan)
        self.telemetry.record_shard_plan(
            [
                (shard_range.segment, shard_range.lo, shard_range.hi)
                for shard_range in self.plan.ranges
            ]
        )

    def _known_static(self, node_id: bytes) -> bool:
        """Is this node already on a StaticNodes schedule (any shard)?"""
        if not self._shards:
            return node_id in self.static_nodes
        return node_id in self._shards[self.plan.shard_of(node_id)].static_nodes

    def _prune_stale(self) -> None:
        horizon = self.clock() - self.config.stale_address_age
        for entry in list(self.db):
            if 0 <= entry.last_success < horizon:
                self.static_nodes.pop(entry.node_id, None)
                self.breakers.forget(entry.node_id)

    def _prune_shard(self, shard: ShardState) -> None:
        horizon = self.clock() - self.config.stale_address_age
        for entry in list(self.db):
            if (
                0 <= entry.last_success < horizon
                and entry.node_id in shard.static_nodes
            ):
                shard.static_nodes.pop(entry.node_id, None)
                shard.breakers.forget(entry.node_id)

    # -- dialing ---------------------------------------------------------------

    async def _dial(self, target: ENode, connection_type: str) -> None:
        if not self.breakers.allow(target.node_id):
            self.telemetry.record_breaker_skip()
            return
        async with self._dial_semaphore:
            self._dialed_once.add(target.node_id)
            result = await self._harvest(
                target,
                self.private_key,
                connection_type=connection_type,
                dial_timeout=self.config.dial_timeout,
                clock=self.clock,
                retry=self.config.retry,
                retry_rng=self.rng,
                telemetry=self.telemetry,
            )
        self.telemetry.record_scheduled_dial(connection_type)
        self.writer.submit(result)
        if result.outcome.completed:
            self.breakers.record_success(target.node_id)
            # §4: completed dials join StaticNodes for 30-minute re-dials
            self.static_nodes.setdefault(
                target.node_id,
                (target, self.clock() + self.config.static_dial_interval),
            )
        else:
            self.breakers.record_failure(target.node_id)

    async def _shard_dial(
        self, shard: ShardState, target: ENode, connection_type: str
    ) -> None:
        if not shard.breakers.allow(target.node_id):
            shard.telemetry.record_breaker_skip()
            return
        async with shard.semaphore:
            self._dialed_once.add(target.node_id)
            result = await self._harvest(
                target,
                self.private_key,
                connection_type=connection_type,
                dial_timeout=self.config.dial_timeout,
                clock=self.clock,
                retry=self.config.retry,
                retry_rng=self.rng,
                telemetry=shard.telemetry,
            )
        shard.telemetry.record_scheduled_dial(connection_type)
        shard.telemetry.shard_dials.labels(
            shard=shard.label, type=connection_type
        ).inc()
        # the only shared-state touch on the shard hot path: hand the
        # result to the single writer queue
        await self.writer.put(result)
        if result.outcome.completed:
            shard.breakers.record_success(target.node_id)
            # §4: completed dials join StaticNodes for 30-minute re-dials
            shard.static_nodes.setdefault(
                target.node_id,
                (target, self.clock() + self.config.static_dial_interval),
            )
        else:
            shard.breakers.record_failure(target.node_id)

    async def crawl_for(self, seconds: float) -> NodeDB:
        """Convenience: run the loops for a wall-clock duration."""
        await asyncio.sleep(seconds)
        return self.db
