"""Crawl bookkeeping: per-day counters and whole-crawl statistics.

NodeFinder's raw log is one line per connection event; at simulation scale
we aggregate as we go (the full line-by-line log is optional) into the
exact series the paper's internal-validation figures plot:

* Figure 5 — discovery attempts and dynamic-dial attempts per day;
* Figure 6 — unique nodes dynamic-dialed per day;
* Figure 7 — unique nodes responding to dynamic dials per day;
* Figure 8 — dials reaching a chosen bootstrap node, by connection type.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.simnet.node import DialOutcome, DialResult


@dataclass
class DayCounters:
    """One instance-day of crawl activity."""

    discovery_attempts: int = 0
    dynamic_dial_attempts: int = 0
    static_dial_attempts: int = 0
    incoming_connections: int = 0
    nodes_dialed: set = field(default_factory=set)
    nodes_responded: set = field(default_factory=set)
    hellos: int = 0
    statuses: int = 0
    disconnects_received: dict = field(default_factory=lambda: defaultdict(int))

    def merge(self, other: "DayCounters") -> None:
        self.discovery_attempts += other.discovery_attempts
        self.dynamic_dial_attempts += other.dynamic_dial_attempts
        self.static_dial_attempts += other.static_dial_attempts
        self.incoming_connections += other.incoming_connections
        self.nodes_dialed |= other.nodes_dialed
        self.nodes_responded |= other.nodes_responded
        self.hellos += other.hellos
        self.statuses += other.statuses
        for reason, count in other.disconnects_received.items():
            self.disconnects_received[reason] += count


_RESPONDED_OUTCOMES = {
    DialOutcome.HELLO_THEN_DISCONNECT,
    DialOutcome.HELLO_NO_STATUS,
    DialOutcome.FULL_HARVEST,
    DialOutcome.DISCONNECT_BEFORE_HELLO,
}


class CrawlStats:
    """Aggregated counters for one NodeFinder instance (or a merged fleet)."""

    def __init__(self) -> None:
        self.days: dict[int, DayCounters] = defaultdict(DayCounters)
        self.bootstrap_dials: dict[int, dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._bootstrap_id: Optional[bytes] = None

    def watch_bootstrap(self, node_id: bytes) -> None:
        """Track dials to one bootstrap node for the Figure 8 series."""
        self._bootstrap_id = node_id

    def record_discovery(self, day: int, lookups: int = 1) -> None:
        self.days[day].discovery_attempts += lookups

    def record_dial(self, day: int, result: DialResult) -> None:
        counters = self.days[day]
        if result.connection_type == "dynamic-dial":
            counters.dynamic_dial_attempts += 1
            counters.nodes_dialed.add(result.node_id)
            if result.outcome in _RESPONDED_OUTCOMES:
                counters.nodes_responded.add(result.node_id)
        elif result.connection_type == "static-dial":
            counters.static_dial_attempts += 1
        else:
            counters.incoming_connections += 1
        if result.got_hello:
            counters.hellos += 1
        if result.got_status:
            counters.statuses += 1
        if result.disconnect_reason is not None:
            counters.disconnects_received[result.disconnect_reason] += 1
        if (
            self._bootstrap_id is not None
            and result.node_id == self._bootstrap_id
            and result.outcome is not DialOutcome.TIMEOUT
        ):
            self.bootstrap_dials[day][result.connection_type] += 1

    # -- series extraction (the paper's figures) ------------------------------

    def series(self, attribute: str) -> list[tuple[int, float]]:
        """A per-day series, e.g. ``series('discovery_attempts')``."""
        out = []
        for day in sorted(self.days):
            value = getattr(self.days[day], attribute)
            if isinstance(value, set):
                value = len(value)
            out.append((day, value))
        return out

    def daily_average(self, attribute: str, skip_first: int = 0) -> float:
        points = self.series(attribute)[skip_first:]
        if not points:
            return 0.0
        return sum(value for _, value in points) / len(points)

    def bootstrap_series(self) -> list[tuple[int, int, int]]:
        """(day, dynamic dials, static dials) to the watched bootstrap node."""
        out = []
        for day in sorted(self.bootstrap_dials):
            row = self.bootstrap_dials[day]
            out.append((day, row.get("dynamic-dial", 0), row.get("static-dial", 0)))
        return out

    def merge(self, other: "CrawlStats") -> None:
        for day, counters in other.days.items():
            self.days[day].merge(counters)
        for day, row in other.bootstrap_dials.items():
            for kind, count in row.items():
                self.bootstrap_dials[day][kind] += count

    @classmethod
    def merged(cls, stats: "Iterable[CrawlStats]") -> "CrawlStats":
        """One stats object folding every input (the fleet view).

        Mirror of ``NodeDB.merged``: aggregation happens inside the
        owning module, so callers never mutate a ``CrawlStats`` they do
        not own (the OWNERSHIP invariant).
        """
        merged = cls()
        for item in stats:
            merged.merge(item)
        return merged

    def total(self, attribute: str) -> float:
        return sum(value for _, value in self.series(attribute))
