"""Sharded crawl scheduling: keyspace partition + the single-writer fold.

The paper's NodeFinder sustained its dial rate with one process; scaling
past that means running N dial workers without giving up the property
every analysis depends on — *one* coherent
:class:`~repro.nodefinder.database.NodeDB`.  This module provides the two
pieces both the simulated and the live crawler build on:

* :class:`ShardPlan` — a deterministic partition of the 64-byte enode
  keyspace into N contiguous node-ID-prefix ranges.  Each target is owned
  by exactly one shard, so no node is ever dialed by two workers and a
  sharded crawl visits exactly the set an unsharded crawl would.
* :class:`NodeDBWriter` — the single mutation point for shared crawl
  state.  Every ``DialResult`` folds into the shared ``NodeDB`` (and
  ``CrawlStats``) *only* through a writer: synchronously in direct mode
  (simulation, unsharded live crawls), or via one ``asyncio.Queue``
  drained by one consumer task in queued mode (sharded live crawls) — so
  shard dial loops never contend on the database and there are no
  cross-shard locks on the hot path.  The OWNERSHIP lint family enforces
  the invariant type-resolved and tree-wide: a ``NodeDB``/``CrawlStats``
  mutation outside a writer class (or the owning module) is an error.

Fold order across shards is not deterministic in queued mode, and does
not need to be: ``NodeDB.observe`` folds per *node* in timestamp order
(each node is owned by one shard, which preserves its dial order), and
``CrawlStats`` day counters are order-insensitive sums and sets.  The
shard-conformance suite pins entry-for-entry equality against the
unsharded crawl.
"""

from __future__ import annotations

import asyncio
import logging
from typing import TYPE_CHECKING, Optional

from repro.simnet.clock import SECONDS_PER_DAY
from repro.telemetry.profiler import NULL_PROFILER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nodefinder.database import NodeDB, NodeEntry
    from repro.nodefinder.records import CrawlStats
    from repro.resilience import PeerScoreboard
    from repro.simnet.node import DialResult
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)

#: the partition key is the first two node-ID bytes: 2^16 prefixes
PREFIX_SPACE = 1 << 16


class ShardPlan:
    """Deterministic partition of the enode keyspace by node-ID prefix.

    Shard ``k`` owns the contiguous 16-bit-prefix range
    ``[ceil(k * 65536 / N), ceil((k + 1) * 65536 / N))``; with N=1 every
    node lands in shard 0, so the unsharded crawl is the 1-shard plan.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, node_id: bytes) -> int:
        """The index of the shard owning ``node_id`` (0 <= index < N)."""
        prefix = int.from_bytes(node_id[:2], "big")
        return prefix * self.shards // PREFIX_SPACE

    def prefix_range(self, shard: int) -> tuple[int, int]:
        """The half-open 16-bit prefix range ``[lo, hi)`` shard owns."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range 0..{self.shards - 1}")
        lo = -(-shard * PREFIX_SPACE // self.shards)
        hi = -(-(shard + 1) * PREFIX_SPACE // self.shards)
        return lo, hi


class NodeDBWriter:
    """Single writer folding every ``DialResult`` into shared crawl state.

    Direct mode (the default) folds synchronously on ``submit`` — the
    simulation and unsharded live crawls keep their call-site semantics.
    After ``start()`` the writer runs in queued mode: ``put`` enqueues
    and one consumer task folds, so N shard loops write through one
    serialization point without blocking each other.  ``close()`` drains
    whatever is queued before stopping, so the database always reflects
    every journaled dial at shutdown.
    """

    def __init__(
        self,
        db: "NodeDB",
        stats: Optional["CrawlStats"] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.db = db
        self.stats = stats
        self.telemetry = telemetry
        self.folds = 0
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None

    @property
    def queued(self) -> bool:
        return self._queue is not None

    def _fold(self, result: "DialResult") -> "NodeEntry":
        profiler = (
            self.telemetry.profiler if self.telemetry is not None else NULL_PROFILER
        )
        with profiler.scope("writer.fold"):
            if self.stats is not None:
                self.stats.record_dial(
                    int(result.timestamp // SECONDS_PER_DAY), result
                )
            entry = self.db.observe(result)
            self.folds += 1
            if self.telemetry is not None:
                self.telemetry.writer_folds.inc()
            return entry

    def submit(self, result: "DialResult") -> "NodeEntry":
        """Fold one result synchronously (direct mode only)."""
        if self._queue is not None:
            raise RuntimeError("writer is in queued mode; use `await put(...)`")
        return self._fold(result)

    # -- stats passthroughs --------------------------------------------------
    #
    # Crawl bookkeeping that is not dial-result-shaped still goes through
    # the writer, so CrawlStats has exactly one mutating owner.  Both are
    # synchronous upserts of independent counters — safe in either mode.

    def record_discovery(self, day: int, lookups: int = 1) -> None:
        """Count discovery lookups for the Figure 5 series."""
        if self.stats is not None:
            self.stats.record_discovery(day, lookups)

    def watch_bootstrap(self, node_id: bytes) -> None:
        """Arm the Figure 8 bootstrap-dial series."""
        if self.stats is not None:
            self.stats.watch_bootstrap(node_id)

    async def put(self, result: "DialResult") -> None:
        """Hand one result to the writer (folds inline in direct mode)."""
        if self._queue is None:
            self._fold(result)
            return
        self._queue.put_nowait(result)
        if self.telemetry is not None:
            self.telemetry.writer_queue_depth.set(float(self._queue.qsize()))

    def start(self) -> None:
        """Switch to queued mode: one consumer task owns every fold."""
        if self._queue is not None:
            return
        self._queue = asyncio.Queue()
        self._task = asyncio.ensure_future(self._drain_forever())

    async def _drain_forever(self) -> None:
        assert self._queue is not None
        while True:
            result = await self._queue.get()
            try:
                self._fold(result)
            except Exception:
                logger.exception("writer failed to fold a dial result")
            finally:
                self._queue.task_done()
            if self.telemetry is not None:
                self.telemetry.writer_queue_depth.set(float(self._queue.qsize()))

    async def close(self) -> None:
        """Drain the queue, stop the consumer, return to direct mode."""
        if self._task is None:
            return
        assert self._queue is not None
        await self._queue.join()
        pending: set[asyncio.Task] = {self._task}
        while pending:
            # same re-cancel idiom as LiveNodeFinder.stop(): a cancellation
            # can be absorbed by a queue.get completion race on 3.11
            for task in pending:
                task.cancel()
            _, pending = await asyncio.wait(pending, timeout=1.0)
        self._task = None
        self._queue = None


class ShardState:
    """One live dial worker's private state: queue, breakers, statics.

    Everything here is owned by exactly one shard loop — the only shared
    object a shard touches is the :class:`NodeDBWriter`, which is why the
    hot path needs no locks.  ``telemetry`` shares the crawl's metrics
    registry but carries the shard's own :class:`EventJournal`, so
    per-shard journals merge back into one timeline via
    ``repro.analysis.ingest.replay_journals``.
    """

    def __init__(
        self,
        index: int,
        telemetry: "Telemetry",
        breakers: "PeerScoreboard",
        max_active_dials: int,
        segment: str = "",
    ) -> None:
        self.index = index
        self.telemetry = telemetry
        self.breakers = breakers
        #: stable segment id (``<k>.g<gen>``) for elastic crawls; the
        #: positional ``index`` shifts when the plan reshards, the segment
        #: never does, so journal files and metric labels key on it
        self.segment = segment
        #: dynamic-dial targets routed here by the discovery loop
        self.queue: asyncio.Queue = asyncio.Queue()
        #: per-shard dial-slot budget (total live concurrency is N * this)
        self.semaphore = asyncio.Semaphore(max_active_dials)
        #: node id -> (enode, next static dial time); owned by this shard
        self.static_nodes: dict = {}
        #: set by a reshard handoff: the loop drains and exits cleanly
        self.retired = False
        #: last published loop lag (the reshard controller's second gauge)
        self.last_lag = 0.0
        #: the supervised loop task, so a handoff can await the drain
        self.task: Optional[asyncio.Task] = None

    @property
    def label(self) -> str:
        """The metric/journal label: segment id when elastic, else index."""
        return self.segment or str(self.index)
