"""Running many NodeFinder instances and merging their view (§5: 30 ran)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nodefinder.database import NodeDB
from repro.nodefinder.records import CrawlStats
from repro.nodefinder.scanner import NodeFinderConfig, NodeFinderInstance
from repro.simnet.world import SimWorld


@dataclass
class Fleet:
    """A set of instances plus their merged crawl products."""

    world: SimWorld
    instances: list[NodeFinderInstance]

    @property
    def merged_db(self) -> NodeDB:
        merged = NodeDB()
        for instance in self.instances:
            merged.merge(instance.db)
        return merged

    @property
    def merged_stats(self) -> CrawlStats:
        merged = CrawlStats()
        for instance in self.instances:
            merged.merge(instance.stats)
        return merged

    def own_node_ids(self) -> set[bytes]:
        return {instance.node_id for instance in self.instances}


def run_fleet(
    world: SimWorld,
    instance_count: int = 3,
    days: float = 6.0,
    config: NodeFinderConfig | None = None,
    watch_bootstrap: bool = False,
) -> Fleet:
    """Start ``instance_count`` crawlers and run the world for ``days``.

    All instances start simultaneously, as in the paper's deployment.  With
    ``watch_bootstrap`` every instance tracks dials to the first bootstrap
    node (the Figure 8 experiment).
    """
    bootstrap = world.bootstrap_addresses()
    instances = []
    for index in range(instance_count):
        instance = NodeFinderInstance(
            world,
            config=config or NodeFinderConfig(seed=index),
            name=f"nodefinder-{index}",
        )
        if watch_bootstrap and bootstrap:
            instance.watch_bootstrap(bootstrap[0].node_id)
        instance.start(bootstrap)
        instances.append(instance)
    world.run_days(days)
    return Fleet(world=world, instances=instances)
