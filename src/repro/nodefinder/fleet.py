"""Running many NodeFinder instances and merging their view (§5: 30 ran).

With ``telemetry_dir`` set, :func:`run_fleet` instruments every instance
with its own :class:`~repro.telemetry.Telemetry` on the shared world
clock, writes one measurement journal per instance
(``<name>.jsonl`` — replayable one by one or merged via
:func:`repro.analysis.ingest.replay_journals`), and exports the fleet's
merged metrics snapshot (``metrics.json``) — the multi-instance
equivalent of the paper's combined measurement log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.nodefinder.database import NodeDB
from repro.nodefinder.records import CrawlStats
from repro.nodefinder.scanner import NodeFinderConfig, NodeFinderInstance
from repro.simnet.adversary import AdversaryCampaign
from repro.simnet.world import SimWorld
from repro.telemetry import (
    NULL_TELEMETRY,
    EventJournal,
    Telemetry,
    merge_snapshots,
    split_snapshot_by_shard,
)
from repro.telemetry.flightrecorder import FlightRecorder
from repro.telemetry.profiler import Profiler


@dataclass
class Fleet:
    """A set of instances plus their merged crawl products."""

    world: SimWorld
    instances: list[NodeFinderInstance]
    #: per-instance journal paths, in instance order (``telemetry_dir`` runs)
    journal_paths: list[Path] = field(default_factory=list)
    #: merged-metrics export path (``telemetry_dir`` runs)
    metrics_path: Path | None = None

    @property
    def merged_db(self) -> NodeDB:
        return NodeDB.merged(instance.db for instance in self.instances)

    @property
    def merged_stats(self) -> CrawlStats:
        return CrawlStats.merged(instance.stats for instance in self.instances)

    def own_node_ids(self) -> set[bytes]:
        return {instance.node_id for instance in self.instances}

    def instance_snapshots(self) -> list[dict]:
        return [
            instance.telemetry.registry.snapshot() for instance in self.instances
        ]

    def merged_metrics(self) -> dict:
        """Fleet totals: every instance's counters/histograms summed."""
        return merge_snapshots(self.instance_snapshots())

    def labeled_metrics(self) -> dict:
        """One snapshot with per-instance series (``instance`` label)."""
        return merge_snapshots(
            self.instance_snapshots(),
            names=[instance.name for instance in self.instances],
        )

    def shard_labeled_metrics(self) -> dict:
        """One snapshot with per-shard series across the fleet.

        Each shard's series merge under the instance name
        ``<name>-shard<label>`` — for elastic crawls the label is the
        generation-suffixed segment id (``<name>-shard<k>.g<gen>``), so
        children born from a split never collide with the pre-split
        shard's name (``merge_snapshots`` raises on duplicates)."""
        snapshots: list[dict] = []
        names: list[str] = []
        for instance in self.instances:
            per_shard = split_snapshot_by_shard(
                instance.telemetry.registry.snapshot()
            )
            for shard, snapshot in per_shard.items():
                snapshots.append(snapshot)
                names.append(f"{instance.name}-shard{shard}")
        return merge_snapshots(snapshots, names=names)


def run_fleet(
    world: SimWorld,
    instance_count: int = 3,
    days: float = 6.0,
    config: NodeFinderConfig | None = None,
    watch_bootstrap: bool = False,
    telemetry_dir: str | Path | None = None,
    adversary: AdversaryCampaign | None = None,
    profiler: Profiler | None = None,
    recorder: FlightRecorder | None = None,
) -> Fleet:
    """Start ``instance_count`` crawlers and run the world for ``days``.

    All instances start simultaneously, as in the paper's deployment.  With
    ``watch_bootstrap`` every instance tracks dials to the first bootstrap
    node (the Figure 8 experiment).  With ``telemetry_dir`` each instance
    journals to ``<dir>/<name>.jsonl`` — or, when ``config.shards > 1``,
    one journal per shard (``<dir>/<name>-shard<k>.jsonl``), which
    ``repro.analysis.ingest.replay_journals`` merges back into a single
    timeline — and the merged metrics snapshot is written to
    ``<dir>/metrics.json`` when the run completes.  Elastic runs
    (``config.reshard`` set) journal per *segment* instead
    (``<dir>/<name>-shard<k>.g<gen>.jsonl``): reshards seal parent
    segments mid-crawl and open generation-suffixed children, all of
    which land in ``journal_paths``.

    With ``adversary`` the campaign is launched against the *first*
    instance's node ID after every instance has minted its identity but
    before any starts crawling — the attacker is in place when the victim
    boots, the worst case of the eclipse literature.  Instance identities
    draw from the builder RNG and start() from the world RNG, so the
    two-phase ordering leaves an adversary-free run bit-identical.

    With ``profiler`` every instance's telemetry shares one hot-path
    profiler and the world clock runs its labelled callbacks under
    profiler scopes; with ``recorder`` every instance tees its journal
    events and spans into one crash flight recorder.  Neither changes
    the crawl itself.
    """
    export_dir = Path(telemetry_dir) if telemetry_dir is not None else None
    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)
    shard_count = max(1, int(config.shards)) if config is not None else 1
    bootstrap = world.bootstrap_addresses()
    clock = lambda: world.now  # noqa: E731 - the one shared timeline
    instances = []
    journals: list[EventJournal] = []
    journal_paths: list[Path] = []
    if profiler is not None:
        world.clock.profiler = profiler
    reshard_policy = config.reshard if config is not None else None
    for index in range(instance_count):
        name = f"nodefinder-{index}"
        telemetry = NULL_TELEMETRY
        shard_journals: list[EventJournal] | None = None
        journal_opener = None
        if export_dir is not None:
            if reshard_policy is not None:
                # elastic runs journal per segment: the instance opens
                # <name>-shard<segment>.jsonl on demand (generation 0 at
                # start, children as reshards happen) via its coordinator
                telemetry = Telemetry(
                    clock=clock, profiler=profiler, recorder=recorder
                )

                def journal_opener(
                    segment: str, name: str = name
                ) -> EventJournal:
                    path = export_dir / f"{name}-shard{segment}.jsonl"
                    journal_paths.append(path)
                    return EventJournal.open(path)

            elif shard_count > 1:
                # one journal per shard (<name>-shard<k>.jsonl); the
                # instance telemetry keeps the shared metrics registry
                # while each shard journals its own dial stream
                telemetry = Telemetry(
                    clock=clock, profiler=profiler, recorder=recorder
                )
                shard_journals = []
                for shard_index in range(shard_count):
                    path = export_dir / f"{name}-shard{shard_index}.jsonl"
                    journal = EventJournal.open(path)
                    journals.append(journal)
                    journal_paths.append(path)
                    shard_journals.append(journal)
            else:
                path = export_dir / f"{name}.jsonl"
                journal = EventJournal.open(path)
                journals.append(journal)
                journal_paths.append(path)
                telemetry = Telemetry(
                    journal=journal,
                    clock=clock,
                    profiler=profiler,
                    recorder=recorder,
                )
        elif profiler is not None or recorder is not None:
            # profiled/recorded but journal-less runs still need a real
            # facade (NULL_TELEMETRY would drop both)
            telemetry = Telemetry(
                clock=clock, profiler=profiler, recorder=recorder
            )
        instance = NodeFinderInstance(
            world,
            config=config or NodeFinderConfig(seed=index),
            name=name,
            telemetry=telemetry,
            shard_journals=shard_journals,
            journal_opener=journal_opener,
        )
        if watch_bootstrap and bootstrap:
            instance.watch_bootstrap(bootstrap[0].node_id)
        instances.append(instance)
    if adversary is not None and instances:
        adversary.launch(world, victim_node_id=instances[0].node_id)
    for instance in instances:
        instance.start(bootstrap)
    fleet = Fleet(world=world, instances=instances, journal_paths=journal_paths)
    try:
        world.run_days(days)
    finally:
        for journal in journals:
            journal.close()
        for instance in instances:
            # elastic runs: segments sealed mid-crawl are already closed;
            # the still-live ones close here
            instance.coordinator.close_open_segments()
    if export_dir is not None:
        fleet.metrics_path = export_dir / "metrics.json"
        with open(fleet.metrics_path, "w", encoding="utf-8") as stream:
            json.dump(fleet.merged_metrics(), stream, indent=2)
    return fleet
