"""NodeFinder's harvest over the real RLPx stack (live TCP peers).

``harvest`` performs exactly the §4 sequence against one peer: RLPx
handshake → DEVp2p HELLO → eth STATUS → GET_BLOCK_HEADERS for the DAO fork
block → DISCONNECT — at most three message exchanges, holding the peer slot
for well under a second on a LAN.  ``crawl_targets`` drives a list of
enodes and fills the same :class:`DialResult`/:class:`NodeDB` structures
the simulator produces, so every analysis runs unchanged on live data.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Iterable

from repro.crypto.keys import PrivateKey, PublicKey
from repro.devp2p.messages import Capability, DisconnectReason, HelloMessage
from repro.devp2p.peer import DevP2PPeer
from repro.discovery.enode import ENode
from repro.errors import HandshakeError, PeerDisconnected, ProtocolError, ReproError
from repro.ethproto import messages as eth
from repro.ethproto.handshake import harvest_dao_check, run_eth_handshake
from repro.nodefinder.database import NodeDB
from repro.rlpx.session import open_session
from repro.simnet.node import DialOutcome, DialResult


def nodefinder_hello(key: PrivateKey, listen_port: int = 30303) -> HelloMessage:
    """The HELLO NodeFinder sends (Geth 1.7.3-based, eth/62+63)."""
    return HelloMessage(
        version=5,
        client_id="Geth/v1.7.3-stable-nodefinder/linux-amd64/go1.9.2",
        capabilities=[Capability("eth", 62), Capability("eth", 63)],
        listen_port=listen_port,
        node_id=key.public_key.to_bytes(),
    )


def nodefinder_status(reference: eth.StatusMessage | None = None) -> eth.StatusMessage:
    """A Mainnet STATUS for the crawler (mirrors the peer's chain tip when
    a reference is supplied, as a harvester legitimately may)."""
    if reference is not None:
        return eth.StatusMessage(
            protocol_version=63,
            network_id=1,
            total_difficulty=0,
            best_hash=eth.MAINNET_GENESIS_HASH,
            genesis_hash=eth.MAINNET_GENESIS_HASH,
        )
    return eth.StatusMessage(
        protocol_version=63,
        network_id=1,
        total_difficulty=0,
        best_hash=eth.MAINNET_GENESIS_HASH,
        genesis_hash=eth.MAINNET_GENESIS_HASH,
    )


async def harvest(
    target: ENode,
    key: PrivateKey,
    connection_type: str = "dynamic-dial",
    dial_timeout: float = 5.0,
    clock: Callable[[], float] | None = None,
) -> DialResult:
    """Run the full §4 harvest against one live peer.

    ``clock`` stamps the result record; callers running a scheduled crawl
    (``LiveNodeFinder``) pass their own so database timestamps share the
    scheduler's timeline.  Defaults to wall-clock epoch seconds, the
    paper's measurement-log convention.
    """
    started = time.monotonic()
    now = clock if clock is not None else time.time
    base = dict(
        timestamp=now(),
        node_id=target.node_id,
        ip=target.ip,
        tcp_port=target.tcp_port,
        connection_type=connection_type,
    )
    try:
        session = await open_session(
            target.ip,
            target.tcp_port,
            key,
            PublicKey.from_bytes(target.node_id),
            dial_timeout=dial_timeout,
        )
    except HandshakeError:
        return DialResult(
            outcome=DialOutcome.TIMEOUT,
            duration=time.monotonic() - started,
            **base,
        )
    peer = DevP2PPeer(session, nodefinder_hello(key))
    hello_fields: dict = {}
    try:
        remote_hello = await peer.handshake()
        hello_fields = dict(
            client_id=remote_hello.client_id,
            capabilities=[tuple(cap) for cap in remote_hello.capabilities],
            listen_port=remote_hello.listen_port,
        )
        latency = session.smoothed_rtt() or 0.0
        if peer.negotiated("eth") is None:
            await peer.disconnect(DisconnectReason.USELESS_PEER)
            return DialResult(
                outcome=DialOutcome.HELLO_THEN_DISCONNECT,
                disconnect_reason=DisconnectReason.USELESS_PEER,
                latency=latency,
                duration=time.monotonic() - started,
                **base,
                **hello_fields,
            )
        info = await run_eth_handshake(peer, nodefinder_status())
        status = info.remote_status
        dao_side = None
        if status.genesis_hash == eth.MAINNET_GENESIS_HASH:
            side, header = await harvest_dao_check(peer)
            dao_side = {"supports": "supports", "opposes": "opposes"}.get(
                side.value, "empty"
            )
        await peer.disconnect(DisconnectReason.CLIENT_QUITTING)
        return DialResult(
            outcome=DialOutcome.FULL_HARVEST,
            latency=session.smoothed_rtt() or latency,
            duration=time.monotonic() - started,
            network_id=status.network_id,
            genesis_hash=status.genesis_hash,
            total_difficulty=status.total_difficulty,
            best_hash=status.best_hash,
            dao_side=dao_side,
            **base,
            **hello_fields,
        )
    except PeerDisconnected as exc:
        reason = exc.reason if isinstance(exc.reason, DisconnectReason) else None
        outcome = (
            DialOutcome.HELLO_THEN_DISCONNECT
            if hello_fields
            else DialOutcome.DISCONNECT_BEFORE_HELLO
        )
        return DialResult(
            outcome=outcome,
            disconnect_reason=reason,
            duration=time.monotonic() - started,
            **base,
            **hello_fields,
        )
    except (ProtocolError, ReproError, ConnectionError, OSError, asyncio.TimeoutError):
        peer.abort()
        return DialResult(
            outcome=DialOutcome.HELLO_NO_STATUS if hello_fields else DialOutcome.RLPX_FAILED,
            duration=time.monotonic() - started,
            **base,
            **hello_fields,
        )
    finally:
        peer.abort()


async def crawl_targets(
    targets: Iterable[ENode],
    key: PrivateKey | None = None,
    concurrency: int = 16,
) -> NodeDB:
    """Harvest many live targets concurrently (maxActiveDialTasks=16, §4)."""
    key = key or PrivateKey.generate()
    db = NodeDB()
    semaphore = asyncio.Semaphore(concurrency)

    async def one(target: ENode) -> None:
        async with semaphore:
            result = await harvest(target, key)
            db.observe(result)

    await asyncio.gather(*(one(target) for target in targets))
    return db
