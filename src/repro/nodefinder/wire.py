"""NodeFinder's harvest over the real RLPx stack (live TCP peers).

``harvest`` performs exactly the §4 sequence against one peer: RLPx
handshake → DEVp2p HELLO → eth STATUS → GET_BLOCK_HEADERS for the DAO fork
block → DISCONNECT — at most three message exchanges, holding the peer slot
for well under a second on a LAN.  ``crawl_targets`` drives a list of
enodes and fills the same :class:`DialResult`/:class:`NodeDB` structures
the simulator produces, so every analysis runs unchanged on live data.

Robustness (the parts the paper's months-long deployment needed):

* every stage (TCP connect, RLPx auth/ack, HELLO, STATUS, DAO check) runs
  under its own :class:`~repro.resilience.StageBudgets` deadline;
* failures are classified — ``DialResult.failure_stage`` says *where* a
  dial died and ``failure_detail`` says *how* (refused vs. reset vs.
  stalled vs. truncated vs. garbage), instead of one catch-all timeout;
* transport-level failures can be retried under a deterministic
  :class:`~repro.resilience.RetryPolicy`;
* one crashing dial can never take down a ``crawl_targets`` batch.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from typing import Callable, Iterable, Optional

from repro.crypto.keys import PrivateKey, PublicKey
from repro.devp2p.messages import Capability, DisconnectReason, HelloMessage
from repro.devp2p.peer import DevP2PPeer
from repro.discovery.enode import ENode
from repro.errors import HandshakeError, PeerDisconnected, ProtocolError, ReproError
from repro.ethproto import messages as eth
from repro.ethproto.handshake import harvest_dao_check, run_eth_handshake
from repro.nodefinder.database import NodeDB
from repro.nodefinder.shard import NodeDBWriter
from repro.resilience import (
    PeerScoreboard,
    RetryPolicy,
    StageBudgets,
    StageTimeout,
    bounded,
)
from repro.rlpx.session import open_session
from repro.simnet.node import DialOutcome, DialResult
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import Span

logger = logging.getLogger(__name__)

#: outcomes worth a second attempt: the transport failed before the peer
#: said anything, so a retry may still harvest (a completed-but-rejected
#: dial — Too many peers, useless peer — is the peer's answer, not noise)
RETRYABLE_OUTCOMES = frozenset(
    {DialOutcome.TIMEOUT, DialOutcome.CONNECTION_REFUSED, DialOutcome.RLPX_FAILED}
)


def nodefinder_hello(key: PrivateKey, listen_port: int = 30303) -> HelloMessage:
    """The HELLO NodeFinder sends (Geth 1.7.3-based, eth/62+63)."""
    return HelloMessage(
        version=5,
        client_id="Geth/v1.7.3-stable-nodefinder/linux-amd64/go1.9.2",
        capabilities=[Capability("eth", 62), Capability("eth", 63)],
        listen_port=listen_port,
        node_id=key.public_key.to_bytes(),
    )


def nodefinder_status(reference: eth.StatusMessage | None = None) -> eth.StatusMessage:
    """A Mainnet STATUS for the crawler (mirrors the peer's chain tip when
    a reference is supplied, as a harvester legitimately may)."""
    if reference is not None:
        return eth.StatusMessage(
            protocol_version=63,
            network_id=reference.network_id,
            total_difficulty=reference.total_difficulty,
            best_hash=reference.best_hash,
            genesis_hash=reference.genesis_hash,
        )
    return eth.StatusMessage(
        protocol_version=63,
        network_id=1,
        total_difficulty=0,
        best_hash=eth.MAINNET_GENESIS_HASH,
        genesis_hash=eth.MAINNET_GENESIS_HASH,
    )


def _error_detail(exc: BaseException) -> str:
    """Fine-grained failure classification for mid-session errors."""
    if isinstance(exc, asyncio.IncompleteReadError):
        return "truncated"
    if isinstance(exc, asyncio.TimeoutError):
        return "stalled"
    if isinstance(exc, (ConnectionError, OSError)):
        return "reset"
    return "protocol"


def _handshake_fields(exc: HandshakeError) -> tuple[DialOutcome, str, str]:
    """Map a classified HandshakeError to (outcome, stage, detail)."""
    detail = "stalled" if exc.kind == "timeout" else exc.kind
    if exc.kind == "refused":
        return DialOutcome.CONNECTION_REFUSED, exc.stage, detail
    if exc.stage == "connect":
        return DialOutcome.TIMEOUT, exc.stage, detail
    return DialOutcome.RLPX_FAILED, exc.stage, detail


async def harvest(
    target: ENode,
    key: PrivateKey,
    connection_type: str = "dynamic-dial",
    dial_timeout: float = 5.0,
    clock: Callable[[], float] | None = None,
    budgets: StageBudgets | None = None,
    retry: RetryPolicy | None = None,
    retry_rng: Optional[random.Random] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> DialResult:
    """Run the full §4 harvest against one live peer.

    ``clock`` stamps the result record; callers running a scheduled crawl
    (``LiveNodeFinder``) pass their own so database timestamps share the
    scheduler's timeline.  Defaults to wall-clock epoch seconds, the
    paper's measurement-log convention.

    ``budgets`` gives every stage its own deadline (defaults to the flat
    ``dial_timeout`` per stage).  With ``retry``, transport failures
    (refused / reset / stalled — never a peer's actual answer) are
    re-attempted under the policy; the returned result carries the total
    ``attempts`` count and always reflects the final attempt.

    ``telemetry`` receives one ``record_dial`` per attempt (with a span
    whose children time each stage) and a ``record_retry`` per backoff.
    """
    stage_budgets = budgets if budgets is not None else StageBudgets.flat(dial_timeout)
    if retry is None:
        return await _harvest_once(
            target, key, connection_type, stage_budgets, clock, telemetry
        )

    async def attempt(number: int) -> DialResult:
        return await _harvest_once(
            target, key, connection_type, stage_budgets, clock, telemetry, number
        )

    def on_retry(attempt_number: int, delay: float) -> None:
        telemetry.record_retry(target.node_id, attempt_number, delay)

    return await retry.run(
        attempt,
        should_retry=lambda result: result.outcome in RETRYABLE_OUTCOMES,
        rng=retry_rng,
        on_retry=on_retry,
    )


async def _harvest_once(
    target: ENode,
    key: PrivateKey,
    connection_type: str,
    budgets: StageBudgets,
    clock: Callable[[], float] | None,
    telemetry: Telemetry = NULL_TELEMETRY,
    attempt: int = 1,
) -> DialResult:
    """One dial attempt under a fresh span; duration comes off the span."""
    span = telemetry.start_span("dial")
    result = await _harvest_attempt(target, key, connection_type, budgets, clock, span)
    result.duration = span.finish(result.outcome.value)
    result.attempts = attempt
    telemetry.record_dial(result, span=span, attempt=attempt)
    return result


async def _harvest_attempt(
    target: ENode,
    key: PrivateKey,
    connection_type: str,
    budgets: StageBudgets,
    clock: Callable[[], float] | None,
    span: Span,
) -> DialResult:
    now = clock if clock is not None else time.time
    base = dict(
        timestamp=now(),
        node_id=target.node_id,
        ip=target.ip,
        tcp_port=target.tcp_port,
        connection_type=connection_type,
    )
    try:
        session = await open_session(
            target.ip,
            target.tcp_port,
            key,
            PublicKey.from_bytes(target.node_id),
            dial_timeout=budgets.connect,
            handshake_timeout=budgets.rlpx,
            trace=span,
        )
    except HandshakeError as exc:
        outcome, stage, detail = _handshake_fields(exc)
        return DialResult(
            outcome=outcome,
            failure_stage=stage,
            failure_detail=detail,
            **base,
        )
    peer = DevP2PPeer(session, nodefinder_hello(key))
    hello_fields: dict = {}
    stage = "hello"
    stage_span = span.child("hello")
    try:
        remote_hello = await bounded(peer.handshake(), budgets.hello, "hello")
        stage_span.finish()
        hello_fields = dict(
            client_id=remote_hello.client_id,
            capabilities=[tuple(cap) for cap in remote_hello.capabilities],
            listen_port=remote_hello.listen_port,
        )
        latency = session.smoothed_rtt() or 0.0
        if peer.negotiated("eth") is None:
            await peer.disconnect(DisconnectReason.USELESS_PEER)
            return DialResult(
                outcome=DialOutcome.HELLO_THEN_DISCONNECT,
                disconnect_reason=DisconnectReason.USELESS_PEER,
                latency=latency,
                **base,
                **hello_fields,
            )
        stage = "status"
        stage_span = span.child("status")
        info = await bounded(
            run_eth_handshake(peer, nodefinder_status()), budgets.status, "status"
        )
        stage_span.finish()
        status = info.remote_status
        dao_side = None
        if status.genesis_hash == eth.MAINNET_GENESIS_HASH:
            stage = "dao"
            stage_span = span.child("dao")
            side, header = await bounded(
                harvest_dao_check(peer), budgets.dao, "dao"
            )
            stage_span.finish()
            dao_side = {"supports": "supports", "opposes": "opposes"}.get(
                side.value, "empty"
            )
        await peer.disconnect(DisconnectReason.CLIENT_QUITTING)
        return DialResult(
            outcome=DialOutcome.FULL_HARVEST,
            latency=session.smoothed_rtt() or latency,
            network_id=status.network_id,
            genesis_hash=status.genesis_hash,
            total_difficulty=status.total_difficulty,
            best_hash=status.best_hash,
            dao_side=dao_side,
            **base,
            **hello_fields,
        )
    except PeerDisconnected as exc:
        reason = exc.reason if isinstance(exc.reason, DisconnectReason) else None
        outcome = (
            DialOutcome.HELLO_THEN_DISCONNECT
            if hello_fields
            else DialOutcome.DISCONNECT_BEFORE_HELLO
        )
        return DialResult(
            outcome=outcome,
            disconnect_reason=reason,
            **base,
            **hello_fields,
        )
    except StageTimeout as exc:
        peer.abort()
        return DialResult(
            outcome=(
                DialOutcome.HELLO_NO_STATUS if hello_fields else DialOutcome.RLPX_FAILED
            ),
            failure_stage=exc.stage,
            failure_detail="stalled",
            **base,
            **hello_fields,
        )
    except (ProtocolError, ReproError, ConnectionError, OSError, asyncio.TimeoutError) as exc:
        peer.abort()
        return DialResult(
            outcome=(
                DialOutcome.HELLO_NO_STATUS if hello_fields else DialOutcome.RLPX_FAILED
            ),
            failure_stage=stage,
            failure_detail=_error_detail(exc),
            **base,
            **hello_fields,
        )
    finally:
        peer.abort()


async def crawl_targets(
    targets: Iterable[ENode],
    key: PrivateKey | None = None,
    concurrency: int = 16,
    dial_timeout: float = 5.0,
    budgets: StageBudgets | None = None,
    retry: RetryPolicy | None = None,
    breaker: PeerScoreboard | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> NodeDB:
    """Harvest many live targets concurrently (maxActiveDialTasks=16, §4).

    The fan-out is exception-safe: a dial that raises is logged and
    dropped, never cancelling its siblings.  An optional ``breaker``
    scoreboard skips peers whose circuit is open and feeds outcomes back.
    """
    key = key or PrivateKey.generate()
    db = NodeDB()
    writer = NodeDBWriter(db, telemetry=telemetry)
    semaphore = asyncio.Semaphore(concurrency)

    async def one(target: ENode) -> None:
        if breaker is not None and not breaker.allow(target.node_id):
            return
        async with semaphore:
            result = await harvest(
                target,
                key,
                dial_timeout=dial_timeout,
                budgets=budgets,
                retry=retry,
                telemetry=telemetry,
            )
        if breaker is not None:
            if result.outcome.completed:
                breaker.record_success(target.node_id)
            else:
                breaker.record_failure(target.node_id)
        writer.submit(result)

    target_list = list(targets)
    results = await asyncio.gather(
        *(one(target) for target in target_list), return_exceptions=True
    )
    for target, outcome in zip(target_list, results):
        if isinstance(outcome, asyncio.CancelledError):
            raise outcome
        if isinstance(outcome, BaseException):
            logger.warning(
                "dial of %s crashed: %r", target.short_id(), outcome
            )
    return db
