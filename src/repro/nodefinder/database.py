"""The node database: everything NodeFinder learned about each node ID.

Mirrors the paper's central database of scanned targets (§4-5): last-dial
timestamps drive the static-dial scheduler and stale-address removal, and
the accumulated HELLO/STATUS/DAO fields feed every ecosystem analysis.
Entries are keyed by node ID; a node seen at several IPs keeps them all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.simnet.clock import SECONDS_PER_DAY
from repro.simnet.node import DialOutcome, DialResult


@dataclass
class NodeEntry:
    """Accumulated knowledge about one node ID."""

    node_id: bytes
    ips: set = field(default_factory=set)
    tcp_port: int = 0
    #: first/last time the node actually responded (not mere dial attempts —
    #: §5.4's "active" span is about observed liveliness)
    first_seen: float = 0.0
    last_seen: float = 0.0
    #: most recent dial attempt of any outcome (drives scheduling)
    last_attempt: float = 0.0
    last_success: float = -1.0   # last successful TCP connection
    sessions: int = 0            # connections that yielded any message
    connection_types: set = field(default_factory=set)
    client_id: Optional[str] = None
    capabilities: Optional[list] = None
    network_id: Optional[int] = None
    genesis_hash: Optional[bytes] = None
    best_hash: Optional[bytes] = None
    best_block: Optional[int] = None
    head_at_status: Optional[int] = None
    total_difficulty: Optional[int] = None
    dao_side: Optional[str] = None
    #: ever connected via our own outbound dial (reachability, Table 2)
    outbound_success: bool = False
    latencies: list = field(default_factory=list)
    status_days: set = field(default_factory=set)
    #: remote Disconnect reason label -> count (Table 1 input)
    disconnects: dict = field(default_factory=dict)

    @property
    def active_span(self) -> float:
        """Seconds between first and last sighting."""
        return max(0.0, self.last_seen - self.first_seen)

    @property
    def got_hello(self) -> bool:
        return self.client_id is not None

    @property
    def got_status(self) -> bool:
        return self.network_id is not None

    @property
    def is_mainnet(self) -> bool:
        """Verified non-Classic Mainnet: network 1, Mainnet genesis, pro-fork
        (or chain still below the fork)."""
        from repro.chain.genesis import MAINNET_GENESIS_HASH

        return (
            self.network_id == 1
            and self.genesis_hash == MAINNET_GENESIS_HASH
            and self.dao_side in ("supports", "empty", None)
            and self.dao_side != "opposes"
        )

    @property
    def median_latency(self) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        return ordered[len(ordered) // 2]

    def primary_service(self) -> str:
        """The node's headline DEVp2p service (Table 3 categories)."""
        if not self.capabilities:
            return "unknown"
        names = [name for name, _ in self.capabilities]
        for preferred in ("eth", "bzz", "les", "pip", "shh"):
            if preferred in names:
                return preferred
        return names[0]


class NodeDB:
    """All node entries for one instance or a merged fleet."""

    def __init__(self) -> None:
        self._entries: dict[bytes, NodeEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: bytes) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[NodeEntry]:
        return iter(self._entries.values())

    def get(self, node_id: bytes) -> Optional[NodeEntry]:
        return self._entries.get(node_id)

    def entry(self, node_id: bytes, now: float) -> NodeEntry:
        existing = self._entries.get(node_id)
        if existing is None:
            existing = NodeEntry(node_id=node_id, first_seen=now, last_seen=now)
            self._entries[node_id] = existing
        return existing

    def observe(self, result: DialResult) -> NodeEntry:
        """Fold one connection outcome into the database."""
        entry = self.entry(result.node_id, result.timestamp)
        entry.last_attempt = max(entry.last_attempt, result.timestamp)
        entry.ips.add(result.ip)
        entry.tcp_port = result.tcp_port
        entry.connection_types.add(result.connection_type)
        # a refused connection is not a live observation: nothing answered
        if result.outcome.connected:
            entry.last_success = max(entry.last_success, result.timestamp)
            entry.last_seen = max(entry.last_seen, result.timestamp)
            if result.connection_type in ("dynamic-dial", "static-dial"):
                entry.outbound_success = True
        if result.outcome in (
            DialOutcome.FULL_HARVEST,
            DialOutcome.HELLO_NO_STATUS,
            DialOutcome.HELLO_THEN_DISCONNECT,
        ):
            entry.sessions += 1
        if result.got_hello:
            entry.client_id = result.client_id
            entry.capabilities = result.capabilities
        if result.got_status:
            entry.network_id = result.network_id
            entry.genesis_hash = result.genesis_hash
            entry.best_hash = result.best_hash
            entry.best_block = result.best_block
            entry.head_at_status = result.head_height
            entry.total_difficulty = result.total_difficulty
            entry.status_days.add(int(result.timestamp // SECONDS_PER_DAY))
        if result.dao_side is not None:
            entry.dao_side = result.dao_side
        if result.disconnect_reason is not None:
            label = result.disconnect_reason.label
            entry.disconnects[label] = entry.disconnects.get(label, 0) + 1
        if result.latency and len(entry.latencies) < 32:
            entry.latencies.append(result.latency)
        return entry

    # -- queries -----------------------------------------------------------------

    def nodes_with_hello(self) -> list[NodeEntry]:
        return [entry for entry in self if entry.got_hello]

    def nodes_with_status(self) -> list[NodeEntry]:
        return [entry for entry in self if entry.got_status]

    def mainnet_nodes(self) -> list[NodeEntry]:
        return [entry for entry in self if entry.got_status and entry.is_mainnet]

    def seen_in_window(self, start: float, end: float) -> list[NodeEntry]:
        return [
            entry
            for entry in self
            if entry.last_seen >= start and entry.first_seen < end
        ]

    def stale_addresses(self, now: float, max_age: float = SECONDS_PER_DAY) -> list[bytes]:
        """Node IDs whose last successful connection is older than 24h (§4)."""
        return [
            entry.node_id
            for entry in self
            if entry.last_success >= 0 and now - entry.last_success > max_age
        ]

    def remove(self, node_id: bytes) -> None:
        self._entries.pop(node_id, None)

    def merge(self, other: "NodeDB") -> None:
        """Fold another instance's database into this one (fleet view)."""
        for entry in other:
            self.merge_entry(entry)

    @classmethod
    def from_entries(cls, entries: Iterable[NodeEntry]) -> "NodeDB":
        """A new database folded from entries (filtered copies, rebuilds).

        Keeps the construction inside the owning module: callers that
        derive a new database (sanitisation, subsetting) fold through
        this instead of mutating a fresh ``NodeDB`` themselves — the
        OWNERSHIP invariant allows mutation only here and in the writer.
        """
        db = cls()
        for entry in entries:
            db.merge_entry(entry)
        return db

    @classmethod
    def merged(cls, databases: Iterable["NodeDB"]) -> "NodeDB":
        """One database folding every input database (the fleet view)."""
        merged = cls()
        for db in databases:
            merged.merge(db)
        return merged

    def merge_entry(self, entry: NodeEntry) -> None:
        """Fold a single entry into this database."""
        mine = self._entries.get(entry.node_id)
        if mine is None:
            self._entries[entry.node_id] = entry
        else:
            mine.first_seen = min(mine.first_seen, entry.first_seen)
            mine.last_seen = max(mine.last_seen, entry.last_seen)
            mine.last_success = max(mine.last_success, entry.last_success)
            mine.sessions += entry.sessions
            mine.ips |= entry.ips
            mine.connection_types |= entry.connection_types
            mine.status_days |= entry.status_days
            mine.outbound_success = mine.outbound_success or entry.outbound_success
            if entry.got_hello and (
                not mine.got_hello or entry.last_seen >= mine.last_seen
            ):
                mine.client_id = entry.client_id
                mine.capabilities = entry.capabilities
            if entry.got_status:
                mine.network_id = entry.network_id
                mine.genesis_hash = entry.genesis_hash
                mine.best_hash = entry.best_hash
                mine.best_block = entry.best_block
                mine.head_at_status = entry.head_at_status
                mine.total_difficulty = entry.total_difficulty
            if entry.dao_side is not None:
                mine.dao_side = entry.dao_side
            for label, count in entry.disconnects.items():
                mine.disconnects[label] = mine.disconnects.get(label, 0) + count
            mine.latencies = (mine.latencies + entry.latencies)[:32]

    # -- persistence ---------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write entries as JSON lines; returns the count written.

        The dump is full-fidelity: :meth:`load_jsonl` reconstructs every
        analysis input (including ``head_at_status``, latencies, and
        sighting days), so the database path and the journal-replay path
        of ``nodefinder analyze`` render identical reports.
        """
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self:
                record = {
                    "node_id": entry.node_id.hex(),
                    "ips": sorted(entry.ips),
                    "tcp_port": entry.tcp_port,
                    "first_seen": entry.first_seen,
                    "last_seen": entry.last_seen,
                    "last_attempt": entry.last_attempt,
                    "last_success": entry.last_success,
                    "sessions": entry.sessions,
                    "connection_types": sorted(entry.connection_types),
                    "client_id": entry.client_id,
                    "capabilities": entry.capabilities,
                    "network_id": entry.network_id,
                    "genesis_hash": entry.genesis_hash.hex()
                    if entry.genesis_hash
                    else None,
                    "best_hash": entry.best_hash.hex() if entry.best_hash else None,
                    "best_block": entry.best_block,
                    "head_at_status": entry.head_at_status,
                    "total_difficulty": entry.total_difficulty,
                    "dao_side": entry.dao_side,
                    "outbound_success": entry.outbound_success,
                    "latencies": entry.latencies,
                    "status_days": sorted(entry.status_days),
                    "disconnects": {
                        label: entry.disconnects[label]
                        for label in sorted(entry.disconnects)
                    },
                }
                handle.write(json.dumps(record) + "\n")
                count += 1
        return count

    @classmethod
    def load_jsonl(cls, path: str) -> "NodeDB":
        db = cls()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                entry = NodeEntry(
                    node_id=bytes.fromhex(record["node_id"]),
                    ips=set(record["ips"]),
                    tcp_port=record["tcp_port"],
                    first_seen=record["first_seen"],
                    last_seen=record["last_seen"],
                    last_attempt=record.get("last_attempt", 0.0),
                    last_success=record["last_success"],
                    sessions=record["sessions"],
                    connection_types=set(record.get("connection_types", [])),
                    client_id=record["client_id"],
                    capabilities=[tuple(cap) for cap in record["capabilities"]]
                    if record["capabilities"]
                    else None,
                    network_id=record["network_id"],
                    genesis_hash=bytes.fromhex(record["genesis_hash"])
                    if record["genesis_hash"]
                    else None,
                    best_hash=bytes.fromhex(record["best_hash"])
                    if record.get("best_hash")
                    else None,
                    best_block=record["best_block"],
                    head_at_status=record.get("head_at_status"),
                    total_difficulty=record.get("total_difficulty"),
                    dao_side=record["dao_side"],
                    outbound_success=record.get("outbound_success", False),
                    latencies=list(record.get("latencies", [])),
                    status_days=set(record.get("status_days", [])),
                    disconnects=dict(record.get("disconnects", {})),
                )
                db._entries[entry.node_id] = entry
        return db
