"""NodeFinder: the paper's measurement tool, rebuilt.

NodeFinder is a Geth-derived crawler that (§4):

* ignores the maximum-peer limit and accepts every incoming connection;
* harvests exactly three exchanges per peer — DEVp2p HELLO, Ethereum
  STATUS, and one GET_BLOCK_HEADERS for the DAO fork block — then
  disconnects, holding peer slots for under a second;
* re-dials every previously-seen node as a "static dial" every 30 minutes,
  dropping addresses whose last successful TCP connection is over 24h old;
* logs every HELLO/STATUS/DISCONNECT/DAO event with timestamp, node ID,
  IP, port, connection type, latency, and duration.

Two transports exist: :mod:`repro.nodefinder.scanner` drives the simulated
world (all benchmarks), and :mod:`repro.nodefinder.wire` performs the same
harvest over the real asyncio RLPx stack against live TCP nodes
(integration tests and examples).
"""

from repro.nodefinder.database import NodeDB, NodeEntry
from repro.nodefinder.records import CrawlStats, DayCounters
from repro.nodefinder.reshard import (
    DynamicShardPlan,
    ReshardController,
    ReshardCoordinator,
    ReshardOp,
    ReshardPolicy,
    ShardRange,
)
from repro.nodefinder.sanitize import SanitizationReport, sanitize
from repro.nodefinder.scanner import NodeFinderConfig, NodeFinderInstance
from repro.nodefinder.fleet import Fleet, run_fleet
from repro.nodefinder.live import LiveConfig, LiveNodeFinder

__all__ = [
    "NodeDB",
    "NodeEntry",
    "CrawlStats",
    "DayCounters",
    "DynamicShardPlan",
    "ReshardController",
    "ReshardCoordinator",
    "ReshardOp",
    "ReshardPolicy",
    "SanitizationReport",
    "sanitize",
    "ShardRange",
    "NodeFinderConfig",
    "NodeFinderInstance",
    "Fleet",
    "run_fleet",
    "LiveConfig",
    "LiveNodeFinder",
]
