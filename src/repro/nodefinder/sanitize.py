"""Data sanitisation: the §5.4 abusive-node-ID filter.

The paper found 21.5% of all node IDs came from 0.3% of IPs that churn out
fresh identities (the flagship: 42,237 `ethereumjs-devp2p/v1.0.0` nodes on
one IP, best hash pinned at genesis, 80% seen once).  The published filter:

1. choose nodes active for less than 30 minutes;
2. group them by IP;
3. exclude IPs mapping to fewer than 3 such nodes;
4. compute each IP's new-node generation rate;
5. flag IPs generating a new node every 30 minutes or faster on average.

NodeFinder's own scanner nodes (and other scanners recognisable by
behaviour) are removed as well — the paper drops 242 of them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.nodefinder.database import NodeDB, NodeEntry

#: "active for less than 30 minutes" (step 1), seconds.
SHORT_LIVED_SPAN = 30 * 60.0

#: step 3 threshold.
MIN_NODES_PER_IP = 3

#: step 5: a new node every 30 minutes or faster.
MAX_GENERATION_INTERVAL = 30 * 60.0


@dataclass
class SanitizationReport:
    """What the filter decided and why."""

    total_nodes: int = 0
    abusive_node_ids: set = field(default_factory=set)
    abusive_ips: set = field(default_factory=set)
    scanner_node_ids: set = field(default_factory=set)
    per_ip_counts: dict = field(default_factory=dict)

    @property
    def abusive_fraction(self) -> float:
        if not self.total_nodes:
            return 0.0
        return len(self.abusive_node_ids) / self.total_nodes

    @property
    def removed_total(self) -> int:
        return len(self.abusive_node_ids | self.scanner_node_ids)


def find_abusive(db: NodeDB) -> SanitizationReport:
    """Apply the five-step filter; returns the report without mutating ``db``."""
    report = SanitizationReport(total_nodes=len(db))
    # step 1: short-lived node IDs
    short_lived = [entry for entry in db if entry.active_span < SHORT_LIVED_SPAN]
    # step 2: group by IP (a node seen at several IPs counts for each)
    by_ip: dict[str, list[NodeEntry]] = defaultdict(list)
    for entry in short_lived:
        for ip in entry.ips:
            by_ip[ip].append(entry)
    for ip, entries in by_ip.items():
        # step 3: at least 3 short-lived nodes on the IP
        if len(entries) < MIN_NODES_PER_IP:
            continue
        # step 4: generation rate = IP activity span / number of new nodes
        first = min(entry.first_seen for entry in entries)
        last = max(entry.last_seen for entry in entries)
        span = max(last - first, 1.0)
        interval = span / len(entries)
        report.per_ip_counts[ip] = len(entries)
        # step 5
        if interval <= MAX_GENERATION_INTERVAL:
            report.abusive_ips.add(ip)
            for entry in entries:
                report.abusive_node_ids.add(entry.node_id)
    return report


def find_scanners(db: NodeDB, own_node_ids: Iterable[bytes] = ()) -> set:
    """Nodes running NodeFinder (ours and others') to exclude (§5.4)."""
    scanners = set(own_node_ids)
    for entry in db:
        if entry.client_id and "nodefinder" in entry.client_id.lower():
            scanners.add(entry.node_id)
    return scanners


def sanitize(
    db: NodeDB, own_node_ids: Iterable[bytes] = ()
) -> tuple[NodeDB, SanitizationReport]:
    """Return a cleaned copy of ``db`` plus the report."""
    report = find_abusive(db)
    report.scanner_node_ids = find_scanners(db, own_node_ids)
    to_remove = report.abusive_node_ids | report.scanner_node_ids
    cleaned = NodeDB.from_entries(
        entry for entry in db if entry.node_id not in to_remove
    )
    return cleaned, report
