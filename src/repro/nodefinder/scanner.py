"""The NodeFinder crawler driving the simulated world.

One :class:`NodeFinderInstance` reproduces the modified-Geth behaviour of §4
as discrete events on the shared world clock:

* a **discovery loop**: iterative Kademlia lookups toward random targets,
  querying the ALPHA closest known nodes per round (lookupInterval-paced);
* **dynamic dials** to every address a lookup returns that we have not
  connected to recently;
* **static dials**: every successfully-dialed address joins the
  StaticNodes list and is re-dialed every ``static_dial_interval`` (30 min),
  with addresses stale for >24h dropped from the list;
* **incoming connections** accepted from the world (never Too-many-peers);
* the measurement log: per-day counters plus the node database.
"""

from __future__ import annotations

import heapq
import random
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.discovery.admission import TableAdmission
from repro.discovery.enode import (
    ENode,
    _cached_id_hash as cached_id_hash,
    cached_id_hash_int,
)
from repro.discovery.routing import RoutingTable
from repro.errors import DiscoveryError
from repro.nodefinder.database import NodeDB
from repro.nodefinder.defense import DefenseConfig, DefenseStats
from repro.nodefinder.records import CrawlStats
from repro.nodefinder.reshard import (
    DynamicShardPlan,
    ReshardController,
    ReshardCoordinator,
    ReshardPolicy,
    ShardRange,
)
from repro.nodefinder.shard import NodeDBWriter, ShardPlan
from repro.resilience.breaker import BreakerState, PeerScoreboard
from repro.simnet.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.simnet.geo import Location
from repro.simnet.node import DialOutcome, DialResult
from repro.simnet.world import NodeAddress, SimWorld
from repro.telemetry import NULL_TELEMETRY, EventJournal, Telemetry

#: Kademlia fan-out per lookup round (§2.1).
ALPHA = 3


@dataclass
class NodeFinderConfig:
    """Crawler knobs; paper defaults, with sim-scale pacing.

    The real lookupInterval is 4s; at full fidelity a Geth-like client makes
    ~180-304 discovery attempts per hour.  ``discovery_interval`` defaults
    to 12s of simulated time (300/hour), matching the paper's §5.2 observed
    rate; lower it for denser crawls, raise it for faster simulations.
    """

    discovery_interval: float = 12.0
    static_dial_interval: float = 30 * 60.0
    stale_address_age: float = SECONDS_PER_DAY
    lookup_rounds: int = 3
    seed: int = 0
    #: re-dial budget per static-dial tick (paper: unbounded; a cap keeps
    #: pathological sim configs bounded). None = unbounded.
    max_static_dials_per_tick: Optional[int] = None
    #: Geth's dialHistoryExpiration is 30s — a node can be re-dialed half a
    #: minute after the last attempt, which is how the paper racks up 5.3M
    #: dial attempts to 34.7K nodes per day.  Simulating every attempt is
    #: wasteful; the default re-dial guard of 30 sim-minutes keeps the
    #: discovery:dial ratio shape while cutting event count ~60x (the
    #: scale factor is reported alongside Figure 5).
    dial_history_expiration: float = 30 * 60.0
    #: worker shards partitioning the enode keyspace by node-ID prefix;
    #: dials route to the shard owning the target and fold through one
    #: NodeDBWriter, so any N produces the same NodeDB as shards=1 (the
    #: shard-conformance suite pins this)
    shards: int = 1
    #: hostile-load hardening (table admission, subnet breakers, dial
    #: budget — see :mod:`repro.nodefinder.defense`).  None keeps the
    #: crawler byte-for-byte on its historical undefended behaviour.
    defenses: Optional[DefenseConfig] = None
    #: elastic sharding: when set, the plan may split hot shards and merge
    #: cold siblings mid-crawl (scripted schedule or gauge-driven with
    #: hysteresis — see :mod:`repro.nodefinder.reshard`).  None keeps the
    #: static :class:`~repro.nodefinder.shard.ShardPlan` byte-for-byte.
    reshard: Optional[ReshardPolicy] = None


class NodeFinderInstance:
    """One crawler attached to a SimWorld."""

    def __init__(
        self,
        world: SimWorld,
        config: NodeFinderConfig | None = None,
        name: str = "nodefinder-0",
        location: Location | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        shard_journals: list[EventJournal] | None = None,
        journal_opener: Callable[[str], EventJournal] | None = None,
    ) -> None:
        self.telemetry = telemetry
        self.world = world
        self.config = config or NodeFinderConfig()
        self.name = name
        self.rng = random.Random(self.config.seed ^ zlib.crc32(name.encode()))
        self.location = location or world.geo.assign()
        self.node_id = self.rng.randbytes(64)
        self.db = NodeDB()
        self.stats = CrawlStats()
        #: what the hardening layer absorbed (empty when defenses=None)
        self.defense_stats = DefenseStats()
        defenses = self.config.defenses
        admission: Optional[TableAdmission] = None
        self.scoreboard: Optional[PeerScoreboard] = None
        if defenses is not None:
            admission = TableAdmission(
                ips_per_subnet=defenses.table_ips_per_subnet,
                ips_per_bucket=defenses.table_ips_per_bucket,
                ids_per_ip=defenses.table_ids_per_ip,
                prefix_bits=defenses.subnet_prefix_bits,
                on_reject=self._on_table_reject,
            )
            self.scoreboard = PeerScoreboard(
                failure_threshold=defenses.breaker_failure_threshold,
                cooldown=defenses.breaker_cooldown,
                clock=self._world_now,
                on_transition=self._on_breaker,
                subnet_failure_threshold=defenses.subnet_failure_threshold,
                subnet_cooldown=defenses.subnet_cooldown,
                subnet_prefix_bits=defenses.subnet_prefix_bits,
                on_subnet_transition=self._on_subnet_breaker,
            )
        #: the crawler's own Kademlia routing table (Geth metric) — lookups
        #: pick their alpha starting candidates from here, as Geth does
        self.table = RoutingTable.for_node_id(self.node_id, admission=admission)
        #: discovery pool: everything we can dial (address book)
        self.addresses: dict[bytes, NodeAddress] = {}
        #: dial history: node id -> last dynamic-dial attempt time
        self.dial_history: dict[bytes, float] = {}
        self._started = False
        # -- sharding: partition by node-ID prefix, fold via one writer ------
        shards = max(1, int(self.config.shards))
        policy = self.config.reshard
        if journal_opener is not None and shard_journals is not None:
            raise ValueError(
                "journal_opener and shard_journals are mutually exclusive"
            )
        if policy is not None and shard_journals is not None:
            # a reshard would seal parents and open generation-suffixed
            # children, but a fixed journal list can't grow segments:
            # post-reshard events would silently stop being journaled
            # per shard and replay_journals could not reconstruct the db
            raise ValueError(
                "elastic crawls journal per segment: pass journal_opener, "
                "not a fixed shard_journals list"
            )
        # a reshard policy (or segment-keyed journal opener) switches the
        # partition to the dynamic plan; its generation-0 ranges are the
        # static ShardPlan's exactly, so an elastic crawl that never
        # reshards is byte-for-byte the static crawl
        if policy is not None or journal_opener is not None:
            self.plan: ShardPlan | DynamicShardPlan = DynamicShardPlan(shards)
        else:
            self.plan = ShardPlan(shards)
        self.controller: Optional[ReshardController] = None
        if policy is not None:
            assert isinstance(self.plan, DynamicShardPlan)
            self.controller = ReshardController(policy, self.plan)
        self.coordinator = ReshardCoordinator(journal_opener)
        self.writer = NodeDBWriter(self.db, stats=self.stats, telemetry=telemetry)
        #: per-shard StaticNodes lists: node id -> next re-dial time; a node
        #: lives only in its owning shard's dict
        self._statics: list[dict[bytes, float]] = [{} for _ in range(shards)]
        self._shard_clock = lambda: world.now  # noqa: E731 - the world timeline
        #: segment id -> telemetry facade (elastic runs): keyed on the
        #: stable segment label so facades survive positional index shifts
        self._segment_telemetry: dict[str, Telemetry] = {}
        if shard_journals is not None:
            if len(shard_journals) != shards:
                raise ValueError(
                    f"{len(shard_journals)} shard journals for {shards} shards"
                )
            # each shard journals on its own file but shares the crawl's
            # metrics registry, so counters aggregate exactly as unsharded;
            # the shard label keeps each worker's series separable
            self._shard_telemetry = [
                self._segment_facade(str(index), journal)
                for index, journal in enumerate(shard_journals)
            ]
        elif journal_opener is not None:
            assert isinstance(self.plan, DynamicShardPlan)
            self._shard_telemetry = [
                self._segment_facade(
                    shard_range.segment,
                    self.coordinator.open_segment(shard_range.segment),
                )
                for shard_range in self.plan.ranges
            ]
        else:
            self._shard_telemetry = [telemetry] * shards
        if isinstance(self.plan, DynamicShardPlan):
            for shard_range, facade in zip(self.plan.ranges, self._shard_telemetry):
                self._segment_telemetry[shard_range.segment] = facade

    def _segment_facade(
        self, shard_label: str, journal: EventJournal | None
    ) -> Telemetry:
        # the profiler and flight recorder are crawl-wide: shard facades
        # share them so attribution and crash rings stay in one place
        return Telemetry(
            registry=self.telemetry.registry,
            journal=journal,
            clock=self._shard_clock,
            shard=shard_label,
            profiler=self.telemetry.profiler,
            recorder=self.telemetry.recorder,
        )

    @property
    def shard_count(self) -> int:
        return self.plan.shards

    # -- defence plumbing -------------------------------------------------------

    def _world_now(self) -> float:
        return self.world.now

    def _on_table_reject(self, node: ENode, reason: str, subnet: Optional[str]) -> None:
        self.defense_stats.note_rejection(reason)
        self.telemetry.record_table_admission(node.node_id, node.ip, reason, subnet)

    def _on_breaker(self, node_id: bytes, old: BreakerState, new: BreakerState) -> None:
        self.telemetry.record_breaker(node_id, old, new)

    def _on_subnet_breaker(
        self, subnet: str, old: BreakerState, new: BreakerState
    ) -> None:
        if new is BreakerState.OPEN:
            self.defense_stats.subnet_breaker_trips += 1
        self.telemetry.record_subnet_breaker(subnet, old, new)

    def defense_snapshot(self) -> DefenseStats:
        """The hardening layer's absorption counters, with live breaker state."""
        if self.scoreboard is not None:
            self.defense_stats.open_subnets = self.scoreboard.open_subnets
        return self.defense_stats

    @property
    def static_nodes(self) -> dict[bytes, float]:
        """The StaticNodes schedule (merged read view across shards)."""
        if self.shard_count == 1:
            return self._statics[0]
        merged: dict[bytes, float] = {}
        for statics in self._statics:
            merged.update(statics)
        return merged

    def _static_shard(self, node_id: bytes) -> dict[bytes, float]:
        """The StaticNodes dict of the shard owning ``node_id``."""
        return self._statics[self.plan.shard_of(node_id)]

    # -- lifecycle --------------------------------------------------------------

    def start(self, bootstrap: list[NodeAddress] | None = None) -> None:
        """Join the network: seed bootstrap nodes, start loops, listen."""
        if self._started:
            return
        self._started = True
        # journal which identity this crawl presents (once per journal —
        # unsharded runs alias the same Telemetry N times)
        distinct = {id(self.telemetry): self.telemetry}
        for shard_telemetry in self._shard_telemetry:
            distinct.setdefault(id(shard_telemetry), shard_telemetry)
        for shard_telemetry in distinct.values():
            shard_telemetry.record_crawler_identity(self.node_id, self.name)
        clock = self.world.clock
        for address in bootstrap or self.world.bootstrap_addresses():
            self._learn(address)
            # bootstrap nodes are static-dialed like any other node (§4)
            self._static_shard(address.node_id)[address.node_id] = clock.now
        self.world.register_listener(self)
        clock.schedule_every(
            self.config.discovery_interval,
            self._discovery_tick,
            jitter=lambda: self.rng.uniform(0, 2.0),
            label="scanner.discovery_tick",
        )
        clock.schedule_every(
            self.config.static_dial_interval,
            self._static_tick,
            label="scanner.static_tick",
        )
        clock.schedule_every(
            SECONDS_PER_HOUR, self._prune_stale, label="scanner.prune_stale"
        )
        if isinstance(self.plan, DynamicShardPlan):
            self._publish_plan()

    @property
    def day(self) -> int:
        return int(self.world.now // SECONDS_PER_DAY)

    # -- discovery -----------------------------------------------------------------

    def _discovery_tick(self) -> None:
        """One node-discovery round: an iterative lookup, then dials.

        Every address in the lookup's result set is a dynamic-dial
        candidate unless it is already on the StaticNodes schedule or was
        attempted within the dial-history window — mirroring how Geth
        keeps dialing discovery results (including nodes that never
        answered) round after round.
        """
        target = self.rng.randbytes(64)
        with self.telemetry.profiler.scope("scanner.lookup"):
            results = self._lookup(target)
        self.writer.record_discovery(self.day)
        now = self.world.now
        horizon = now - self.config.dial_history_expiration
        # batched target draw: filter every candidate first, then hand each
        # shard its batch.  The filters depend only on state the dials in
        # this tick cannot change (each node id appears once per lookup),
        # so batching is dial-order neutral — shards=1 produces exactly the
        # pre-shard interleaved sequence.
        eligible: list[NodeAddress] = []
        for address in results:
            if address.node_id == self.node_id:
                continue
            if address.node_id in self._statics[self.plan.shard_of(address.node_id)]:
                continue
            if self.dial_history.get(address.node_id, -1e18) > horizon:
                continue
            eligible.append(address)
        budget = (
            self.config.defenses.max_dynamic_dials_per_tick
            if self.config.defenses is not None
            else None
        )
        if budget is not None and len(eligible) > budget:
            # amplification guard: shed the overflow *before* it enters the
            # dial history, so honest targets dropped this tick are still
            # dialable next tick instead of blocked for the history window
            dropped = len(eligible) - budget
            eligible = eligible[:budget]
            self.defense_stats.budget_dropped_dials += dropped
            self.telemetry.record_budget_drop(dropped)
        batches: list[list[NodeAddress]] = [[] for _ in range(self.shard_count)]
        for address in eligible:
            self.dial_history[address.node_id] = now
            batches[self.plan.shard_of(address.node_id)].append(address)
        for shard_index, batch in enumerate(batches):
            for address in batch:
                self._dial(address, "dynamic-dial", shard_index)
        if self.controller is not None:
            # the tick's batch sizes are the simnet's queue-depth gauge;
            # every dial above has already folded, so an op decided here
            # applies with zero in-flight work (the drain is implicit)
            ops = self.controller.observe(
                [float(len(batch)) for batch in batches], now=now
            )
            for op_action, op_index in ops:
                self._apply_reshard(op_action, op_index)
            if ops:
                self._publish_plan()
        self._refresh_shard_health()

    def _refresh_shard_health(self) -> None:
        """Push the per-shard health gauges (journal backlog) once a tick."""
        for shard_telemetry in self._shard_telemetry:
            journal = shard_telemetry.journal
            if journal is not None:
                shard_telemetry.record_shard_health(journal_backlog=journal.backlog)
        if self.scoreboard is not None:
            self.telemetry.record_shard_health(
                open_breakers=self.scoreboard.open_count
            )

    # -- elastic resharding ----------------------------------------------------

    def _apply_reshard(self, action: str, index: int) -> None:
        """Apply one plan change between ticks (the simnet handoff).

        The scanner is synchronous, so "drain in-flight dials" is free:
        every dial of the triggering tick has already folded through the
        writer.  Protocol: mutate the plan, seal the parent segment(s)
        with the schema-v4 ``reshard`` record as their final event,
        re-route the StaticNodes union under the new plan (each node's
        next-dial time is preserved, so the due set of every future tick
        — and therefore the dial set — is unchanged: the conformance
        equivalence argument), then open the children's
        generation-suffixed journal segments.
        """
        assert self.controller is not None
        plan = self.plan
        assert isinstance(plan, DynamicShardPlan)
        step = self.controller.step - 1  # the observation that decided this
        parent_facades = [self._shard_telemetry[index]]
        if action == "split":
            parent, children = plan.split(index)
            parent_ranges: list[ShardRange] = [parent]
            child_ranges = list(children)
        else:
            parent_facades.append(self._shard_telemetry[index + 1])
            (left, right), child = plan.merge(index)
            parent_ranges = [left, right]
            child_ranges = [child]
        generation = plan.generation
        children_spans = [(child.lo, child.hi) for child in child_ranges]
        for parent_range, facade in zip(parent_ranges, parent_facades):
            self._segment_telemetry.pop(parent_range.segment, None)
            if self.coordinator.journaled:
                self.coordinator.seal_segment(
                    facade,
                    parent_range.segment,
                    action=action,
                    step=step,
                    generation=generation,
                    parent=(parent_range.lo, parent_range.hi),
                    children=children_spans,
                )
            else:
                facade.record_reshard(
                    action=action,
                    step=step,
                    generation=generation,
                    parent=(parent_range.lo, parent_range.hi),
                    children=children_spans,
                )
        # re-route the StaticNodes union under the new partition; values
        # (next-dial times) carry over untouched
        merged_statics: dict[bytes, float] = {}
        for statics in self._statics:
            merged_statics.update(statics)
        self._statics = [{} for _ in range(plan.shards)]
        for node_id, next_dial in merged_statics.items():
            self._statics[plan.shard_of(node_id)][node_id] = next_dial
        for child in child_ranges:
            if self.coordinator.journaled:
                facade = self._segment_facade(
                    child.segment, self.coordinator.open_segment(child.segment)
                )
                # each segment file is self-describing for forensics
                facade.record_crawler_identity(self.node_id, self.name)
            else:
                facade = self.telemetry
            self._segment_telemetry[child.segment] = facade
        self._shard_telemetry = [
            self._segment_telemetry[shard_range.segment]
            for shard_range in plan.ranges
        ]

    def _publish_plan(self) -> None:
        """Refresh the live-plan gauges (``nodefinder top`` renders them)."""
        assert isinstance(self.plan, DynamicShardPlan)
        self.telemetry.record_shard_plan(
            [
                (shard_range.segment, shard_range.lo, shard_range.hi)
                for shard_range in self.plan.ranges
            ]
        )

    def _lookup(self, target: bytes) -> list[NodeAddress]:
        """Iterative FIND_NODE toward ``target`` (paper §2.1 semantics).

        Starting candidates come from the crawler's own routing table
        (bucket walk), exactly as Geth seeds its lookups; every node
        learned on the way enters both the table and the address book.
        """
        target_hash = cached_id_hash(target)
        target_int = int.from_bytes(target_hash, "big")
        id_int = cached_id_hash_int

        def distance(address: NodeAddress) -> int:
            return id_int(address.node_id) ^ target_int

        seen: dict[bytes, NodeAddress] = {}
        for enode in self.table.closest_in_buckets(target_hash, 16):
            address = self.addresses.get(enode.node_id)
            if address is not None:
                seen[address.node_id] = address
        queried: set[bytes] = set()
        results: dict[bytes, NodeAddress] = {}
        for _ in range(self.config.lookup_rounds):
            # nsmallest == sorted(...)[:ALPHA] but only heapifies ALPHA
            # entries — the round scans |seen| addresses, it must not
            # fully sort them
            candidates = heapq.nsmallest(
                ALPHA,
                (a for a in seen.values() if a.node_id not in queried),
                key=distance,
            )
            if not candidates:
                break
            progressed = False
            for address in candidates:
                queried.add(address.node_id)
                answer = self.world.find_node_query(address, target)
                if answer is None:
                    continue
                for record in answer:
                    if record.node_id == self.node_id:
                        continue
                    results[record.node_id] = record
                    if record.node_id not in seen:
                        seen[record.node_id] = record
                        self._learn(record)
                        progressed = True
            if not progressed:
                break
        return list(results.values())

    def _learn(self, address: NodeAddress) -> None:
        """Fold a discovered address into the book and routing table."""
        if address.node_id not in self.addresses:
            try:
                self.table.add(
                    ENode(address.node_id, address.ip, address.udp_port, address.tcp_port)
                )
            except (DiscoveryError, ValueError):
                return
        self.addresses[address.node_id] = address

    # -- dialing -------------------------------------------------------------------

    def _breaker_allows(self, node_id: bytes, ip: str) -> bool:
        """Peer + subnet breaker gate (always open when defenses=None)."""
        if self.scoreboard is None:
            return True
        if self.scoreboard.allow(node_id, ip):
            return True
        self.defense_stats.breaker_skips += 1
        self.telemetry.record_breaker_skip()
        return False

    def _score_dial(self, address: NodeAddress, result: DialResult) -> None:
        if self.scoreboard is None:
            return
        if result.outcome is DialOutcome.TIMEOUT:
            self.scoreboard.record_failure(address.node_id, address.ip)
        else:
            self.scoreboard.record_success(address.node_id, address.ip)

    def _dial(
        self, address: NodeAddress, connection_type: str, shard_index: int = 0
    ) -> Optional[DialResult]:
        if not self._breaker_allows(address.node_id, address.ip):
            return None
        with self.telemetry.profiler.scope("scanner.dial"):
            result = self.world.dial(address, connection_type, self.location)
        self._record(result, shard_index)
        self._score_dial(address, result)
        if result.outcome is not DialOutcome.TIMEOUT:
            # §4: successful dynamic-dials are added to StaticNodes and
            # re-dialed every 30 minutes; completion of any outbound attempt
            # pushes the next re-dial back.
            self._statics[shard_index][address.node_id] = (
                self.world.now + self.config.static_dial_interval
            )
            self.addresses[address.node_id] = address
        return result

    def _static_tick(self) -> None:
        """Re-dial every static node whose re-dial time has come.

        Shards are walked in index order; because the keyspace partition is
        deterministic, the union of due nodes (and each node's owning
        shard) is independent of the shard count.
        """
        now = self.world.now
        due: list[tuple[int, bytes]] = [
            (shard_index, node_id)
            for shard_index, statics in enumerate(self._statics)
            for node_id, next_dial in statics.items()
            if next_dial <= now
        ]
        cap = self.config.max_static_dials_per_tick
        if cap is not None and len(due) > cap:
            # sample from a shard-count-independent order so the capped
            # selection is identical for any N
            due.sort(key=lambda item: item[1])
            due = self.rng.sample(due, cap)
        for shard_index, node_id in due:
            address = self.addresses.get(node_id)
            if address is None:
                self._statics[shard_index].pop(node_id, None)
                continue
            self._statics[shard_index][node_id] = (
                now + self.config.static_dial_interval
            )
            if not self._breaker_allows(node_id, address.ip):
                continue
            with self.telemetry.profiler.scope("scanner.dial"):
                result = self.world.dial(address, "static-dial", self.location)
            self._record(result, shard_index)
            self._score_dial(address, result)

    def _prune_stale(self) -> None:
        """Drop addresses with no successful TCP connection for >24h (§4)."""
        for node_id in self.db.stale_addresses(
            self.world.now, self.config.stale_address_age
        ):
            self._static_shard(node_id).pop(node_id, None)

    # -- incoming ------------------------------------------------------------------

    def handle_incoming(self, result: DialResult) -> None:
        """World-delivered inbound connection (Listener protocol)."""
        shard_index = self.plan.shard_of(result.node_id)
        self._record(result, shard_index)
        # Inbound peers become static-dial targets too — how NodeFinder
        # keeps tabs on otherwise-unreachable nodes while they last.
        if result.node_id not in self._statics[shard_index]:
            self._statics[shard_index][result.node_id] = (
                self.world.now + self.config.static_dial_interval
            )
            self._learn(
                NodeAddress(result.node_id, result.ip, result.tcp_port, result.tcp_port)
            )

    # -- bookkeeping ------------------------------------------------------------------

    def _record(self, result: DialResult, shard_index: int = 0) -> None:
        # every fold goes through the single writer (SHARD-SAFE invariant)
        self.writer.submit(result)
        # simulated dials have no spans (no real stages ran), but they
        # share the funnel counters and journal schema with live crawls;
        # each shard journals on its own telemetry
        self._shard_telemetry[shard_index].record_dial(
            result, attempt=result.attempts
        )

    def watch_bootstrap(self, node_id: bytes) -> None:
        # stats mutations route through the writer (OWNERSHIP invariant)
        self.writer.watch_bootstrap(node_id)
