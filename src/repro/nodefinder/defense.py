"""Hostile-load hardening knobs and anomaly accounting for the crawler.

The scanner faces the adversaries of :mod:`repro.simnet.adversary`
(Sybil /24 swarms, ground node IDs, false-friend NEIGHBORS, FINDNODE
amplification) with three layered defences:

* **table admission** — Geth's per-/24 and per-bucket IP limits plus a
  per-IP node-ID cap (:class:`~repro.discovery.admission.TableAdmission`)
  keep minted identities out of the crawler's own routing table, so
  lookups keep starting from honest candidates;
* **subnet breakers** — the :class:`~repro.resilience.breaker.
  PeerScoreboard` subnet dimension opens one breaker per /24 under
  coordinated failure, so a phantom swarm burns one cooldown instead of
  a breaker per fake enode;
* **dial budget** — a per-tick cap on dynamic dials sheds amplification
  floods *before* they enter the dial history, so honest targets shed in
  one tick stay dialable in the next and retry capacity is never starved.

:class:`DefenseStats` is the graceful-degradation contract: the crawl
always completes, and whatever the defences absorbed is surfaced here so
the run can flag the anomaly instead of silently under-measuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.discovery.admission import (
    DEFAULT_IDS_PER_IP,
    DEFAULT_IPS_PER_BUCKET,
    DEFAULT_IPS_PER_SUBNET,
)


@dataclass
class DefenseConfig:
    """Hardening knobs; defaults mirror Geth's production limits."""

    #: routing-table admission (Geth tableIPLimit / bucketIPLimit + ID cap)
    table_ips_per_subnet: int = DEFAULT_IPS_PER_SUBNET
    table_ips_per_bucket: int = DEFAULT_IPS_PER_BUCKET
    table_ids_per_ip: int = DEFAULT_IDS_PER_IP
    subnet_prefix_bits: int = 24
    #: per-peer breaker: consecutive transport failures before backing off
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 30 * 60.0
    #: subnet breaker: transport failures across one /24 before the whole
    #: prefix is backed off (catches swarms that rotate node IDs per dial)
    subnet_failure_threshold: int = 12
    subnet_cooldown: float = 60 * 60.0
    #: dynamic-dial budget per discovery tick; candidates over the budget
    #: are shed *without* entering the dial history (None = unbounded)
    max_dynamic_dials_per_tick: Optional[int] = 32


@dataclass
class DefenseStats:
    """What the defences absorbed during one crawl (anomaly surface)."""

    #: table-admission refusals by reason string
    table_rejections: Dict[str, int] = field(default_factory=dict)
    #: subnet breakers that transitioned to OPEN (trips, not current state)
    subnet_breaker_trips: int = 0
    #: dials skipped because a peer or subnet breaker was open
    breaker_skips: int = 0
    #: dynamic-dial candidates shed by the per-tick budget
    budget_dropped_dials: int = 0
    #: prefixes open at the end of the crawl
    open_subnets: Tuple[str, ...] = ()

    def note_rejection(self, reason: str) -> None:
        self.table_rejections[reason] = self.table_rejections.get(reason, 0) + 1

    @property
    def total_rejections(self) -> int:
        return sum(self.table_rejections.values())

    @property
    def anomaly_detected(self) -> bool:
        """Did the crawl run into coordinated hostile behaviour?

        Any admission refusal or subnet trip is already coordination
        evidence (honest populations essentially never hit the /24
        limits); sustained budget shedding marks amplification.
        """
        return (
            self.total_rejections > 0
            or self.subnet_breaker_trips > 0
            or self.budget_dropped_dials > 10
        )

    def summary(self) -> str:
        return (
            f"table rejections={self.total_rejections} "
            f"subnet trips={self.subnet_breaker_trips} "
            f"breaker skips={self.breaker_skips} "
            f"budget drops={self.budget_dropped_dials}"
        )
