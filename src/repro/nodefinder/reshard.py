"""Elastic sharding: split a hot shard / merge cold siblings mid-crawl.

PR 5's :class:`~repro.nodefinder.shard.ShardPlan` fixes the node-ID-prefix
partition at startup, so a churn burst (or a Sybil swarm) concentrated in
one prefix slice gates the whole fleet on its hottest shard.  This module
makes the partition *dynamic* while keeping every determinism property the
conformance suites pin:

* :class:`DynamicShardPlan` — a list of contiguous half-open 16-bit prefix
  ranges covering the keyspace.  Generation 0 reproduces ``ShardPlan``'s
  ceil-division ranges exactly, so an elastic crawl that never reshards is
  byte-for-byte the static crawl.  ``split`` halves one range, ``merge``
  fuses two adjacent ones; every operation mints a fresh *generation* and
  each live range carries a stable **segment id** ``"<k>.g<gen>"`` (its
  positional index at birth plus the generation that created it) used for
  journal file names and metric labels — positional indices shift as the
  tree changes, segment ids never collide.
* :class:`ReshardController` — turns the PR 8 shard-health gauges (queue
  depth, loop lag) into split/merge decisions with hysteresis (a shard
  must look hot/cold for ``hysteresis`` consecutive observations) and a
  cooldown between operations so the plan doesn't flap.  A scripted
  ``schedule`` of :class:`ReshardOp` entries drives the deterministic
  conformance crawls.
* :class:`ReshardCoordinator` — owns the journal-segment lifecycle of a
  handoff: it opens generation-suffixed segments and it (alone, with
  ``NodeDBWriter`` — the OWNERSHIP lint enforces this) may **seal** a
  parent's segment after the schema-v4 ``reshard`` event is written.

The handoff protocol itself lives in the crawlers: the simnet scanner
applies an operation between ticks (``scanner._apply_reshard``), the live
crawler drains and retires the parent loops first
(``live._apply_reshard_live``).  Both route every fold through the single
:class:`~repro.nodefinder.shard.NodeDBWriter`, so replaying the merged
generation files reconstructs the live NodeDB entry-for-entry (pinned by
``tests/test_reshard_conformance.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.nodefinder.shard import PREFIX_SPACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry
    from repro.telemetry.journal import EventJournal


@dataclass(frozen=True)
class ShardRange:
    """One live shard's contiguous prefix range ``[lo, hi)``.

    ``segment`` is the stable identity used for journal files and metric
    labels: ``"<positional index at birth>.g<generation>"``.  Generations
    are minted by the plan — one per split/merge — so two ranges can never
    share a segment id even after the positional indices shift.
    """

    lo: int
    hi: int
    generation: int = 0
    segment: str = ""

    @property
    def width(self) -> int:
        return self.hi - self.lo


class ReshardError(ValueError):
    """An infeasible split/merge was requested (width 1, bounds, limits)."""


class DynamicShardPlan:
    """A mutable partition of the 16-bit prefix space into live ranges.

    The generation-0 ranges are exactly ``ShardPlan.prefix_range``'s
    ceil-division partition, so ``DynamicShardPlan(n)`` with no reshard
    operations routes every node the way ``ShardPlan(n)`` does.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.generation = 0
        self.ranges: List[ShardRange] = []
        for index in range(shards):
            lo = -(-index * PREFIX_SPACE // shards)
            hi = -(-(index + 1) * PREFIX_SPACE // shards)
            self.ranges.append(
                ShardRange(lo=lo, hi=hi, generation=0, segment=f"{index}.g0")
            )
        #: every operation applied, in order: (generation, action, parent
        #: segments, child segments) — the plan's own audit trail
        self.history: List[Tuple[int, str, Tuple[str, ...], Tuple[str, ...]]] = []

    @property
    def shards(self) -> int:
        return len(self.ranges)

    def shard_of(self, node_id: bytes) -> int:
        """Positional index of the range owning ``node_id``."""
        prefix = int.from_bytes(node_id[:2], "big")
        return self.index_of_prefix(prefix)

    def index_of_prefix(self, prefix: int) -> int:
        index = bisect.bisect_right(self._bounds(), prefix) - 1
        return max(0, min(index, len(self.ranges) - 1))

    def _bounds(self) -> List[int]:
        return [shard_range.lo for shard_range in self.ranges]

    def prefix_range(self, shard: int) -> Tuple[int, int]:
        """The half-open 16-bit prefix range ``[lo, hi)`` shard owns."""
        if not 0 <= shard < len(self.ranges):
            raise ValueError(
                f"shard {shard} out of range 0..{len(self.ranges) - 1}"
            )
        shard_range = self.ranges[shard]
        return shard_range.lo, shard_range.hi

    def can_split(self, index: int) -> bool:
        return 0 <= index < len(self.ranges) and self.ranges[index].width >= 2

    def can_merge(self, index: int) -> bool:
        return 0 <= index < len(self.ranges) - 1

    def split(self, index: int) -> Tuple[ShardRange, Tuple[ShardRange, ShardRange]]:
        """Halve range ``index``; returns ``(parent, (left, right))``.

        Both children carry the freshly minted generation; their segment
        ids use the positional indices they are born at (``index`` and
        ``index + 1``).
        """
        if not self.can_split(index):
            raise ReshardError(f"cannot split shard {index}: range too narrow")
        parent = self.ranges[index]
        mid = (parent.lo + parent.hi) // 2
        self.generation += 1
        generation = self.generation
        left = ShardRange(
            lo=parent.lo, hi=mid, generation=generation,
            segment=f"{index}.g{generation}",
        )
        right = ShardRange(
            lo=mid, hi=parent.hi, generation=generation,
            segment=f"{index + 1}.g{generation}",
        )
        self.ranges[index : index + 1] = [left, right]
        self.history.append(
            (generation, "split", (parent.segment,), (left.segment, right.segment))
        )
        return parent, (left, right)

    def merge(self, index: int) -> Tuple[Tuple[ShardRange, ShardRange], ShardRange]:
        """Fuse adjacent ranges ``index``/``index+1`` into one child."""
        if not self.can_merge(index):
            raise ReshardError(f"cannot merge shard {index} with its right sibling")
        left, right = self.ranges[index], self.ranges[index + 1]
        self.generation += 1
        generation = self.generation
        child = ShardRange(
            lo=left.lo, hi=right.hi, generation=generation,
            segment=f"{index}.g{generation}",
        )
        self.ranges[index : index + 2] = [child]
        self.history.append(
            (generation, "merge", (left.segment, right.segment), (child.segment,))
        )
        return (left, right), child


@dataclass(frozen=True)
class ReshardOp:
    """One scripted plan change: ``split`` or ``merge`` shard ``index`` at
    controller step ``step`` (the k-th health observation)."""

    step: int
    action: str  # "split" | "merge"
    index: int

    def __post_init__(self) -> None:
        if self.action not in ("split", "merge"):
            raise ValueError(f"unknown reshard action {self.action!r}")


@dataclass
class ReshardPolicy:
    """When the controller may change the plan, and by how much.

    ``schedule`` scripts deterministic operations (the conformance
    harness); automatic gauge-driven decisions run when ``auto`` is true —
    the default is automatic *unless* a schedule is given.
    """

    max_shards: int = 8
    min_shards: int = 1
    #: queue depth at/above which a shard counts as hot for one observation
    split_load: float = 32.0
    #: queue depth at/below which a shard counts as cold for one observation
    merge_load: float = 1.0
    #: optional loop-lag trigger (seconds); a lagging shard is hot too
    split_lag: Optional[float] = None
    #: consecutive hot/cold observations required before acting
    hysteresis: int = 3
    #: seconds between plan changes (suppresses flapping)
    cooldown: float = 60.0
    #: how often the live reshard loop polls the gauges
    interval: float = 5.0
    schedule: Tuple[ReshardOp, ...] = ()
    auto: Optional[bool] = None

    @property
    def automatic(self) -> bool:
        return self.auto if self.auto is not None else not self.schedule


@dataclass
class _Streaks:
    hot: List[int] = field(default_factory=list)
    cold: List[int] = field(default_factory=list)

    def resize(self, shards: int) -> None:
        self.hot = [0] * shards
        self.cold = [0] * shards


class ReshardController:
    """Decides split/merge operations from health observations.

    Scripted operations fire at their exact ``step``; automatic decisions
    need ``hysteresis`` consecutive hot (or cold) observations and respect
    the ``cooldown``.  The controller never reads a clock or RNG of its
    own — steps and ``now`` arrive from the crawler, so a scripted elastic
    crawl is exactly reproducible.
    """

    def __init__(self, policy: ReshardPolicy, plan: DynamicShardPlan) -> None:
        self.policy = policy
        self.plan = plan
        self.step = 0
        self._streaks = _Streaks()
        self._streaks.resize(plan.shards)
        self._last_op_at: Optional[float] = None
        self._schedule = sorted(policy.schedule, key=lambda op: op.step)
        self._schedule_pos = 0

    def observe(
        self,
        loads: Sequence[float],
        now: float = 0.0,
        lags: Optional[Sequence[float]] = None,
    ) -> List[Tuple[str, int]]:
        """Feed one round of per-shard loads; returns ops to apply now.

        ``loads[i]`` is shard i's queue depth (simnet: batch size); the
        optional ``lags`` adds the loop-lag trigger.  The caller applies
        each returned ``(action, index)`` in order, re-reading its own
        shard list between them — indices are valid against the plan as
        mutated by the preceding operations.
        """
        policy = self.policy
        if len(self._streaks.hot) != self.plan.shards:
            self._streaks.resize(self.plan.shards)
        for index in range(self.plan.shards):
            load = loads[index] if index < len(loads) else 0.0
            lag = (
                lags[index]
                if lags is not None and index < len(lags)
                else None
            )
            hot = load >= policy.split_load or (
                policy.split_lag is not None
                and lag is not None
                and lag >= policy.split_lag
            )
            cold = load <= policy.merge_load
            self._streaks.hot[index] = self._streaks.hot[index] + 1 if hot else 0
            self._streaks.cold[index] = self._streaks.cold[index] + 1 if cold else 0
        step = self.step
        self.step += 1
        ops = self._scripted_ops(step)
        if not ops and policy.automatic:
            decision = self._auto_decide(loads, now)
            if decision is not None:
                ops = [decision]
        if ops:
            self._last_op_at = now
            self._streaks.resize(self.plan.shards)
        return ops

    def _scripted_ops(self, step: int) -> List[Tuple[str, int]]:
        """Scripted ops due at ``step``, each feasible when applied in order.

        The caller applies the returned ops sequentially, mutating the
        plan between them — so a second same-step op must be validated
        against the plan *as its predecessors leave it*, not the plan as
        it stands now (two ``merge 0`` ops at 2 shards would otherwise
        both look feasible and the second would raise mid-crawl; same
        for repeated splits sneaking past ``max_shards``).  A shadow
        copy of the range widths replays each accepted op, so every op
        returned is feasible at its apply point.  Infeasible scripted
        ops are skipped, not raised: Hypothesis drives random schedules
        and the crawl must simply go on.
        """
        ops: List[Tuple[str, int]] = []
        widths = [shard_range.width for shard_range in self.plan.ranges]
        while (
            self._schedule_pos < len(self._schedule)
            and self._schedule[self._schedule_pos].step <= step
        ):
            op = self._schedule[self._schedule_pos]
            self._schedule_pos += 1
            if op.action == "split" and self._split_feasible(widths, op.index):
                width = widths[op.index]
                # plan.split halves at (lo + hi) // 2: left gets floor(w/2)
                widths[op.index : op.index + 1] = [width // 2, width - width // 2]
                ops.append(("split", op.index))
            elif op.action == "merge" and self._merge_feasible(widths, op.index):
                widths[op.index : op.index + 2] = [
                    widths[op.index] + widths[op.index + 1]
                ]
                ops.append(("merge", op.index))
        return ops

    def _split_feasible(self, widths: Sequence[int], index: int) -> bool:
        return (
            len(widths) < self.policy.max_shards
            and 0 <= index < len(widths)
            and widths[index] >= 2
        )

    def _merge_feasible(self, widths: Sequence[int], index: int) -> bool:
        return (
            len(widths) > self.policy.min_shards
            and 0 <= index < len(widths) - 1
        )

    def _split_allowed(self, index: int) -> bool:
        return self._split_feasible(
            [shard_range.width for shard_range in self.plan.ranges], index
        )

    def _merge_allowed(self, index: int) -> bool:
        return self._merge_feasible(
            [shard_range.width for shard_range in self.plan.ranges], index
        )

    def _auto_decide(
        self, loads: Sequence[float], now: float
    ) -> Optional[Tuple[str, int]]:
        policy = self.policy
        if (
            self._last_op_at is not None
            and now - self._last_op_at < policy.cooldown
        ):
            return None
        # split the hottest shard that has been hot long enough
        hottest: Optional[int] = None
        for index in range(self.plan.shards):
            if self._streaks.hot[index] < policy.hysteresis:
                continue
            if not self._split_allowed(index):
                continue
            load = loads[index] if index < len(loads) else 0.0
            if hottest is None or load > (
                loads[hottest] if hottest < len(loads) else 0.0
            ):
                hottest = index
        if hottest is not None:
            return ("split", hottest)
        # merge the coldest adjacent pair where both sides have been cold
        coldest: Optional[int] = None
        coldest_load = 0.0
        for index in range(self.plan.shards - 1):
            if (
                self._streaks.cold[index] < policy.hysteresis
                or self._streaks.cold[index + 1] < policy.hysteresis
            ):
                continue
            if not self._merge_allowed(index):
                continue
            pair_load = sum(
                loads[i] if i < len(loads) else 0.0 for i in (index, index + 1)
            )
            if coldest is None or pair_load < coldest_load:
                coldest, coldest_load = index, pair_load
        if coldest is not None:
            return ("merge", coldest)
        return None


class ReshardCoordinator:
    """Owns journal segments across a handoff: open children, seal parents.

    ``opener`` maps a segment id to a fresh :class:`EventJournal` (the
    fleet runner opens ``<name>-shard<segment>.jsonl``); without one the
    crawl is unjournaled and segment bookkeeping degenerates to no-ops.
    Sealing writes the schema-v4 ``reshard`` record *into the parent's
    segment* first — the sealed file's last event says where its range
    went — then calls :meth:`EventJournal.seal`.  The OWNERSHIP lint
    allows only this class (and ``NodeDBWriter``) to seal journals.
    """

    def __init__(
        self, opener: Optional[Callable[[str], "EventJournal"]] = None
    ) -> None:
        self._opener = opener
        #: segment id -> the open journal for that segment
        self.open_segments: Dict[str, "EventJournal"] = {}

    @property
    def journaled(self) -> bool:
        return self._opener is not None

    def open_segment(self, segment: str) -> Optional["EventJournal"]:
        """Open (and track) the journal for a newly live range."""
        if self._opener is None:
            return None
        journal = self._opener(segment)
        self.open_segments[segment] = journal
        return journal

    def seal_segment(
        self,
        telemetry: "Telemetry",
        segment: str,
        *,
        action: str,
        step: int,
        generation: int,
        parent: Tuple[int, int],
        children: Sequence[Tuple[int, int]],
    ) -> None:
        """Write the ``reshard`` record through ``telemetry``, then seal.

        ``telemetry`` must be the facade that owns the segment's journal —
        the record lands as the segment's final event, so replay sees the
        handoff exactly where the dial stream stops.
        """
        telemetry.record_reshard(
            action=action,
            step=step,
            generation=generation,
            parent=parent,
            children=children,
        )
        journal = self.open_segments.pop(segment, None)
        if journal is not None:
            journal.seal()

    def close_open_segments(self) -> None:
        """Close every still-open segment journal (crawl shutdown)."""
        for journal in self.open_segments.values():
            journal.close()
        self.open_segments.clear()
