"""Reproduction of *Measuring Ethereum Network Peers* (Kim et al., IMC 2018).

The package rebuilds, in pure Python, everything the paper's NodeFinder
measurement tool stands on and everything its evaluation reports:

* the Ethereum network stack — RLP (:mod:`repro.rlp`), the cryptographic
  primitives (:mod:`repro.crypto`), RLPx discovery (:mod:`repro.discovery`),
  the encrypted transport (:mod:`repro.rlpx`), DEVp2p (:mod:`repro.devp2p`),
  and the eth subprotocol with full/fast sync (:mod:`repro.ethproto`);
* a blockchain substrate (:mod:`repro.chain`) whose Mainnet genesis hashes
  to the real ``d4e56740…cb8fa3``;
* a live node (:mod:`repro.fullnode`) and the NodeFinder crawler
  (:mod:`repro.nodefinder`) in both simulated and real-socket forms;
* a simulated 2018 DEVp2p ecosystem (:mod:`repro.simnet`) and the analysis
  pipeline (:mod:`repro.analysis`) regenerating every table and figure.

Quickstart::

    import asyncio
    from repro.crypto import PrivateKey
    from repro.fullnode import FullNode
    from repro.nodefinder.wire import harvest

    async def main():
        node = await FullNode().start()
        result = await harvest(node.enode, PrivateKey.generate())
        print(result.client_id, result.network_id, result.dao_side)
        await node.stop()

    asyncio.run(main())

See README.md for the architecture, DESIGN.md for the system inventory and
substitutions, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "rlp",
    "crypto",
    "discovery",
    "rlpx",
    "devp2p",
    "ethproto",
    "chain",
    "simnet",
    "nodefinder",
    "datasets",
    "analysis",
    "fullnode",
    "errors",
]
