"""Resilience primitives for the live NodeFinder stack.

The paper's crawler ran for months against the open Internet; this
package holds everything that lets the reproduction degrade gracefully
the same way: deterministic retry/backoff (:class:`RetryPolicy`),
per-stage harvest deadlines (:class:`StageBudgets`), per-peer circuit
breakers (:class:`CircuitBreaker` / :class:`PeerScoreboard`), crash
supervision for crawler loops (:class:`LoopSupervisor`), and the chaos
fault-injection layer (:class:`ChaosProxy`, :class:`ChaosStreamReader`)
the test suite uses to prove each failure mode maps to a deterministic
:class:`~repro.simnet.node.DialOutcome`.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker, PeerScoreboard
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosProxy,
    ChaosStreamReader,
    FaultType,
)
from repro.resilience.deadline import StageBudgets, StageTimeout, bounded
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import DEFAULT_SUPERVISOR_POLICY, LoopSupervisor

__all__ = [
    "BreakerState",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosStreamReader",
    "CircuitBreaker",
    "DEFAULT_SUPERVISOR_POLICY",
    "FaultType",
    "LoopSupervisor",
    "PeerScoreboard",
    "RetryPolicy",
    "StageBudgets",
    "StageTimeout",
    "bounded",
]
