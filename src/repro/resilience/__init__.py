"""Resilience primitives for the live NodeFinder stack.

The paper's crawler ran for months against the open Internet; this
package holds everything that lets the reproduction degrade gracefully
the same way: deterministic retry/backoff (:class:`RetryPolicy`),
per-stage harvest deadlines (:class:`StageBudgets`), per-peer circuit
breakers (:class:`CircuitBreaker` / :class:`PeerScoreboard`), crash
supervision for crawler loops (:class:`LoopSupervisor`), and the chaos
fault-injection layer (:class:`ChaosProxy`, :class:`ChaosStreamReader`
for TCP, :class:`ChaosDatagramTransport` for the UDP discovery socket)
the test suite uses to prove each failure mode maps to a deterministic
:class:`~repro.simnet.node.DialOutcome` or telemetry outcome.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker, PeerScoreboard
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosDatagramTransport,
    ChaosProxy,
    ChaosStreamReader,
    DatagramChaosConfig,
    DatagramFault,
    FaultType,
)
from repro.resilience.deadline import StageBudgets, StageTimeout, bounded
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import DEFAULT_SUPERVISOR_POLICY, LoopSupervisor

__all__ = [
    "BreakerState",
    "ChaosConfig",
    "ChaosDatagramTransport",
    "ChaosProxy",
    "ChaosStreamReader",
    "CircuitBreaker",
    "DEFAULT_SUPERVISOR_POLICY",
    "DatagramChaosConfig",
    "DatagramFault",
    "FaultType",
    "LoopSupervisor",
    "PeerScoreboard",
    "RetryPolicy",
    "StageBudgets",
    "StageTimeout",
    "bounded",
]
