"""Per-peer failure scoring: circuit breakers over the dial schedule.

The discovery fabric keeps re-surfacing the same enodes, and the static
list re-dials every entry each cycle; without damping, a dead or
adversarial peer is hammered on every pass — the paper's deployment ran
against a network where Henningsen et al. later showed actively hostile
peers exist.  A :class:`CircuitBreaker` per enode moves through the
classic three states: CLOSED (dial freely) → OPEN after
``failure_threshold`` consecutive transport failures (dials are skipped)
→ HALF_OPEN once ``cooldown`` seconds pass (exactly one probe dial is
admitted; success closes the breaker, failure re-opens it and restarts
the cooldown).  The clock is injectable so every transition is testable
without sleeping.
"""

from __future__ import annotations

import enum
import ipaddress
import time
from typing import Callable, Dict, Optional, Tuple


class BreakerState(enum.Enum):
    """Where one peer's breaker currently sits."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure scoring for a single peer.

    ``on_transition(old, new)`` is an optional observability hook fired
    whenever the breaker's state changes (including the lazy
    OPEN → HALF_OPEN move, reported when a caller first observes it).
    The breaker has no dependency on the telemetry package — the owner
    wires the hook into whatever instrument it keeps.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 300.0,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[
            Callable[[BreakerState, BreakerState], None]
        ] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock if clock is not None else time.monotonic
        self._on_transition = on_transition
        self.failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._reported = BreakerState.CLOSED

    def _sync_state(self) -> BreakerState:
        """Fire the transition hook if the observable state moved."""
        state = self.state
        if state is not self._reported:
            old, self._reported = self._reported, state
            if self._on_transition is not None:
                self._on_transition(old, state)
        return state

    @property
    def state(self) -> BreakerState:
        if self._opened_at is None:
            return BreakerState.CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def allow(self) -> bool:
        """May the caller dial this peer right now?

        In HALF_OPEN exactly one probe is admitted until it reports back
        via :meth:`record_success` / :meth:`record_failure`.
        """
        state = self._sync_state()
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def would_allow(self) -> bool:
        """:meth:`allow` without consuming the HALF_OPEN probe slot.

        Lets a caller combine several breakers (peer + subnet) and only
        burn probe slots once every dimension has agreed to the dial.
        """
        state = self._sync_state()
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        return not self._probing

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None
        self._probing = False
        self._sync_state()

    def record_failure(self) -> None:
        self._probing = False
        if self._opened_at is not None:
            # failed probe (or failure racing the open window): the peer is
            # still down — restart the cooldown from now
            self._opened_at = self._clock()
            self._sync_state()
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._opened_at = self._clock()
        self._sync_state()


def subnet_of(ip: Optional[str], prefix_bits: int = 24) -> Optional[str]:
    """The ``a.b.c.0/24``-style prefix an address belongs to.

    Returns ``None`` for missing or unparseable addresses so callers can
    skip the subnet dimension for them.
    """
    if not ip:
        return None
    try:
        return str(ipaddress.ip_network(f"{ip}/{prefix_bits}", strict=False))
    except ValueError:
        return None


class PeerScoreboard:
    """Circuit breakers keyed by node ID, lazily created.

    ``on_transition(node_id, old, new)`` mirrors the per-breaker hook
    with the owning node ID bound in.

    A second, optional *subnet* dimension guards against coordinated
    failure: when ``subnet_failure_threshold`` is set, every dial outcome
    also scores a breaker keyed by the peer's ``/subnet_prefix_bits``
    prefix, and :meth:`allow` refuses a peer whose whole prefix has
    tripped — a Sybil swarm minted from one /24 burns one breaker, not
    one breaker per phantom enode.  Callers opt in per call by passing
    the peer's ``ip``; probe slots are only consumed once both
    dimensions agree, so combining them cannot wedge either breaker in
    HALF_OPEN.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 300.0,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[
            Callable[[bytes, BreakerState, BreakerState], None]
        ] = None,
        subnet_failure_threshold: Optional[int] = None,
        subnet_cooldown: Optional[float] = None,
        subnet_prefix_bits: int = 24,
        on_subnet_transition: Optional[
            Callable[[str, BreakerState, BreakerState], None]
        ] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._breakers: Dict[bytes, CircuitBreaker] = {}
        self.subnet_failure_threshold = subnet_failure_threshold
        self.subnet_cooldown = (
            subnet_cooldown if subnet_cooldown is not None else cooldown
        )
        self.subnet_prefix_bits = subnet_prefix_bits
        self._on_subnet_transition = on_subnet_transition
        self._subnet_breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, node_id: bytes) -> CircuitBreaker:
        existing = self._breakers.get(node_id)
        if existing is None:
            hook = None
            if self._on_transition is not None:
                report = self._on_transition

                def hook(old, new, _id=node_id):
                    report(_id, old, new)

            existing = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self._clock,
                on_transition=hook,
            )
            self._breakers[node_id] = existing
        return existing

    def _subnet_breaker(self, ip: Optional[str]) -> Optional[CircuitBreaker]:
        if self.subnet_failure_threshold is None:
            return None
        subnet = subnet_of(ip, self.subnet_prefix_bits)
        if subnet is None:
            return None
        existing = self._subnet_breakers.get(subnet)
        if existing is None:
            hook = None
            if self._on_subnet_transition is not None:
                report = self._on_subnet_transition

                def hook(old, new, _subnet=subnet):
                    report(_subnet, old, new)

            existing = CircuitBreaker(
                failure_threshold=self.subnet_failure_threshold,
                cooldown=self.subnet_cooldown,
                clock=self._clock,
                on_transition=hook,
            )
            self._subnet_breakers[subnet] = existing
        return existing

    def allow(self, node_id: bytes, ip: Optional[str] = None) -> bool:
        peer = self.breaker(node_id)
        subnet = self._subnet_breaker(ip)
        if subnet is None:
            return peer.allow()
        # probe-slot discipline: agree on both dimensions before
        # consuming either HALF_OPEN probe, else a refused dial would
        # leave the other breaker waiting on a report that never comes
        if not peer.would_allow() or not subnet.would_allow():
            return False
        return peer.allow() and subnet.allow()

    def record_success(self, node_id: bytes, ip: Optional[str] = None) -> None:
        self.breaker(node_id).record_success()
        subnet = self._subnet_breaker(ip)
        if subnet is not None:
            subnet.record_success()

    def record_failure(self, node_id: bytes, ip: Optional[str] = None) -> None:
        self.breaker(node_id).record_failure()
        subnet = self._subnet_breaker(ip)
        if subnet is not None:
            subnet.record_failure()

    def state(self, node_id: bytes) -> BreakerState:
        existing = self._breakers.get(node_id)
        return existing.state if existing is not None else BreakerState.CLOSED

    def subnet_state(self, ip: Optional[str]) -> BreakerState:
        subnet = subnet_of(ip, self.subnet_prefix_bits)
        existing = (
            self._subnet_breakers.get(subnet) if subnet is not None else None
        )
        return existing.state if existing is not None else BreakerState.CLOSED

    @property
    def open_count(self) -> int:
        """Peers currently backed off (OPEN), for stats surfacing."""
        return sum(
            1 for b in self._breakers.values() if b.state is BreakerState.OPEN
        )

    @property
    def open_subnets(self) -> Tuple[str, ...]:
        """Prefixes currently backed off wholesale, sorted for stats."""
        return tuple(
            sorted(
                subnet
                for subnet, breaker in self._subnet_breakers.items()
                if breaker.state is BreakerState.OPEN
            )
        )

    def forget(self, node_id: bytes) -> None:
        """Drop a peer's breaker (e.g. when its address is pruned)."""
        self._breakers.pop(node_id, None)

    def __len__(self) -> int:
        return len(self._breakers)
