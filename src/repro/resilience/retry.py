"""Deterministic retry/backoff policies for the live crawler.

The paper's NodeFinder ran for months against peers that reset
mid-handshake, stall inside STATUS, or drop off between discovery and
dial.  One attempt per enode per cycle wastes a crawl slot every time a
transient failure hits; unbounded retries hammer dead addresses forever.
:class:`RetryPolicy` is the middle ground: exponential backoff with
optional jitter, bounded by both an attempt count and a wall-clock
deadline.  Every source of nondeterminism is injectable — the RNG that
draws jitter, the clock that meters the deadline, the sleeper that
waits — so a schedule is exactly reproducible in tests and never leaks
wall-clock time into simulated runs.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with attempt and deadline budgets.

    The delay before attempt ``n + 1`` (1-based ``n`` attempts already
    made) is ``base_delay * multiplier ** (n - 1)`` capped at
    ``max_delay``, optionally spread by ``jitter``: a uniform draw over
    ``delay * (1 ± jitter)`` from an *injected* ``random.Random``, so two
    runs with the same seed back off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: fractional spread of each delay; 0 disables jitter entirely
    jitter: float = 0.0
    #: total budget in seconds across all attempts and waits (None: none)
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff after ``attempt`` failed attempts (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            raw *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return raw

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` waits)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay(attempt, rng)

    async def run(
        self,
        attempt_fn: Callable[[int], Awaitable[T]],
        should_retry: Optional[Callable[[T], bool]] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
    ) -> T:
        """Run ``attempt_fn(attempt_number)`` under this policy.

        Retries while ``should_retry(result)`` is true and budgets remain;
        the *last* result is always returned (never raises on exhaustion —
        failure stays encoded in the result, the crawler's convention).
        Exceptions from ``attempt_fn`` propagate: classification into
        results is the caller's job.  ``on_retry(attempt, delay)`` is an
        observability hook fired just before each backoff wait, with the
        1-based number of the attempt that failed and the wait length.
        """
        clock = clock if clock is not None else time.monotonic
        sleep = sleep if sleep is not None else asyncio.sleep
        started = clock()
        attempt = 0
        while True:
            attempt += 1
            result = await attempt_fn(attempt)
            if should_retry is None or not should_retry(result):
                return result
            if attempt >= self.max_attempts:
                return result
            delay = self.delay(attempt, rng)
            if (
                self.deadline is not None
                and clock() - started + delay > self.deadline
            ):
                return result
            if on_retry is not None:
                on_retry(attempt, delay)
            await sleep(delay)
