"""Loop supervision: restart a crashed crawler loop instead of dying silently.

``asyncio.ensure_future(loop())`` without supervision has a failure mode
the paper's months-long deployment cannot afford: one unexpected
exception ends the task, nothing awaits it until shutdown, and the
crawler keeps "running" with its discovery or static-dial loop quietly
dead.  :class:`LoopSupervisor` wraps the loop coroutine, restarts it
after a crash under a :class:`~repro.resilience.retry.RetryPolicy`
backoff, counts crashes/restarts for the owner's ``stats``, and gives up
(re-raising the last error) only when the restart budget is exhausted.
Cancellation always propagates — ``stop()`` still stops everything.
"""

from __future__ import annotations

import asyncio
import logging
import random
from typing import Awaitable, Callable, Optional

from repro.resilience.retry import RetryPolicy

logger = logging.getLogger(__name__)

#: restart budget used when the owner does not supply one: up to five
#: restarts, 0.5s doubling to 30s between them
DEFAULT_SUPERVISOR_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.5, multiplier=2.0, max_delay=30.0
)


class LoopSupervisor:
    """Run one long-lived loop coroutine, restarting it on crashes."""

    def __init__(
        self,
        name: str,
        factory: Callable[[], Awaitable[None]],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        on_crash: Optional[Callable[[BaseException], None]] = None,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.factory = factory
        self.policy = policy if policy is not None else DEFAULT_SUPERVISOR_POLICY
        self._rng = rng
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._on_crash = on_crash
        self._on_restart = on_restart
        self.crashes = 0
        self.restarts = 0
        self.last_error: Optional[BaseException] = None

    async def run(self) -> None:
        """Run the loop until it returns cleanly, is cancelled, or the
        restart budget is spent (then the last crash re-raises so the
        owner's shutdown path surfaces it)."""
        runs = 0
        while True:
            runs += 1
            try:
                await self.factory()
                return  # clean exit: the loop saw its stop flag
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.crashes += 1
                self.last_error = exc
                if self._on_crash is not None:
                    self._on_crash(exc)
                logger.warning(
                    "loop %s crashed (%d): %r", self.name, self.crashes, exc
                )
                if runs >= self.policy.max_attempts:
                    logger.error(
                        "loop %s exhausted its %d-run restart budget",
                        self.name,
                        self.policy.max_attempts,
                    )
                    raise
                await self._sleep(self.policy.delay(runs, self._rng))
                self.restarts += 1
                if self._on_restart is not None:
                    self._on_restart()
