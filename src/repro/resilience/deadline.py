"""Per-stage deadlines for the §4 harvest sequence.

NodeFinder's harvest is at most three message exchanges, but each one
waits on a different resource: the TCP connect, the RLPx auth/ack, the
DEVp2p HELLO, the eth STATUS, and the DAO-fork header answer.  A single
flat timeout lets one slow stage eat the whole budget (a peer that
accepts instantly but stalls inside STATUS holds a dial slot for the
full dial timeout) and makes the failure log useless — "timed out"
without saying *where*.  :class:`StageBudgets` gives every stage its own
budget and :func:`bounded` converts an overrun into a
:class:`StageTimeout` carrying the stage name, so
``DialResult.failure_stage`` can say exactly which exchange stalled.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class StageBudgets:
    """Seconds allowed per harvest stage (defaults suit a WAN crawl)."""

    connect: float = 5.0
    rlpx: float = 5.0
    hello: float = 5.0
    status: float = 5.0
    dao: float = 5.0

    @classmethod
    def flat(cls, timeout: float) -> "StageBudgets":
        """Every stage gets the same budget (the legacy flat dial timeout)."""
        return cls(
            connect=timeout, rlpx=timeout, hello=timeout, status=timeout, dao=timeout
        )

    @property
    def total(self) -> float:
        """Worst-case wall clock for one full harvest attempt."""
        return self.connect + self.rlpx + self.hello + self.status + self.dao


class StageTimeout(ReproError):
    """One harvest stage exceeded its budget; ``stage`` names it."""

    def __init__(self, stage: str, budget: float) -> None:
        super().__init__(f"stage {stage!r} exceeded its {budget:.3f}s budget")
        self.stage = stage
        self.budget = budget


async def bounded(coro: Awaitable[T], budget: float, stage: str) -> T:
    """Await ``coro`` under ``budget`` seconds; overruns raise StageTimeout."""
    try:
        return await asyncio.wait_for(coro, budget)
    except asyncio.TimeoutError:
        raise StageTimeout(stage, budget) from None
