"""Fault injection for the live stack: a chaos TCP proxy and stream wrappers.

The open Internet the paper crawled injects faults continuously — peers
reset mid-handshake, stall inside STATUS, feed garbage frames.  This
module reproduces those faults *deterministically* so tests can assert
the exact :class:`~repro.simnet.node.DialOutcome` each one maps to:

* :class:`ChaosProxy` — a localhost TCP proxy between the crawler and a
  real node.  Client→upstream bytes pass verbatim; upstream→client bytes
  go through one configured :class:`FaultType`.  ``fail_first`` limits
  the fault to the first N connections so retry paths can be exercised
  (fail, fail, then succeed).
* :class:`ChaosStreamReader` — a duck-typed ``asyncio.StreamReader``
  wrapper injecting read-side faults, pluggable into
  :class:`~repro.fullnode.FullNode` so inbound sessions on a localhost
  simnet misbehave without any proxy.

Fault → outcome mapping (asserted by ``tests/test_chaos_harvest.py``):

========== ==========================================================
LATENCY    harvest still completes (``FULL_HARVEST``), just slower
TRUNCATE   EOF mid-message → ``RLPX_FAILED`` / detail ``truncated``
GARBAGE    undecryptable bytes → ``RLPX_FAILED`` / detail ``protocol``
RESET      TCP RST mid-handshake → ``RLPX_FAILED`` / detail ``reset``
STALL      silence under a deadline → ``RLPX_FAILED`` / detail ``stalled``
========== ==========================================================
"""

from __future__ import annotations

import asyncio
import enum
import logging
import socket
import struct
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

logger = logging.getLogger(__name__)

_CHUNK = 65536


def _hard_reset(writer: asyncio.StreamWriter) -> None:
    """Close sending a TCP RST, not a FIN.

    ``transport.abort()`` alone lets the kernel send a normal FIN when the
    buffers are empty; SO_LINGER with a zero timeout forces the RST the
    RESET fault promises, so the victim sees ``ConnectionResetError``
    rather than a clean EOF.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
    transport = writer.transport
    if transport is not None:
        transport.abort()


class FaultType(enum.Enum):
    """What the chaos layer does to the byte stream."""

    LATENCY = "latency"    # delay every chunk, deliver intact
    TRUNCATE = "truncate"  # forward ``after_bytes`` then close cleanly (FIN)
    GARBAGE = "garbage"    # substitute undecryptable bytes, then close
    RESET = "reset"        # hard TCP reset (RST) at the fault point
    STALL = "stall"        # deliver nothing past the fault point, stay open


@dataclass(frozen=True)
class ChaosConfig:
    """One fault, fully parameterised — no ambient randomness anywhere."""

    fault: FaultType
    #: injected delay per delivered chunk (LATENCY)
    latency: float = 0.02
    #: clean bytes delivered before the fault fires (TRUNCATE/GARBAGE/RESET/STALL)
    after_bytes: int = 0
    #: bytes substituted by GARBAGE; None uses a deterministic RLPx-shaped
    #: junk message (valid 2-byte size prefix, undecryptable body)
    garbage: Optional[bytes] = None
    #: fault only the first N connections, then behave cleanly (0 = always);
    #: lets tests drive "fails twice, succeeds on the third retry"
    fail_first: int = 0

    def garbage_bytes(self) -> bytes:
        if self.garbage is not None:
            return self.garbage
        body = bytes((index * 37 + 11) % 251 for index in range(194))
        return len(body).to_bytes(2, "big") + body


class ChaosProxy:
    """A localhost TCP proxy injecting one fault into server→client bytes."""

    def __init__(
        self, upstream_host: str, upstream_port: int, config: ChaosConfig
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config
        self.host = "127.0.0.1"
        self.port = 0
        self.connections = 0
        self.faults_injected = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(self._handle, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        faulted = (
            self.config.fail_first == 0
            or self.connections <= self.config.fail_first
        )
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except (ConnectionError, OSError):
            writer.close()
            return
        upstream_pump = asyncio.ensure_future(self._pump_clean(reader, up_writer))
        if faulted:
            downstream_pump = asyncio.ensure_future(
                self._pump_faulted(up_reader, writer)
            )
        else:
            downstream_pump = asyncio.ensure_future(
                self._pump_clean(up_reader, writer)
            )
        for task in (upstream_pump, downstream_pump):
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    @staticmethod
    async def _pump_clean(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                data = await reader.read(_CHUNK)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _pump_faulted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Forward upstream→client bytes through the configured fault."""
        config = self.config
        fault = config.fault
        passed = 0
        stalled = False
        try:
            while True:
                data = await reader.read(_CHUNK)
                if not data:
                    if not stalled:
                        writer.close()
                    break
                if stalled:
                    continue  # STALL swallows everything past the fault point
                if fault is FaultType.LATENCY:
                    await asyncio.sleep(config.latency)
                    writer.write(data)
                    await writer.drain()
                    continue
                clean_budget = config.after_bytes - passed
                if clean_budget > 0:
                    head = data[:clean_budget]
                    writer.write(head)
                    await writer.drain()
                    passed += len(head)
                    if passed < config.after_bytes:
                        continue
                self.faults_injected += 1
                if fault is FaultType.TRUNCATE:
                    writer.close()  # clean FIN mid-message
                    break
                if fault is FaultType.RESET:
                    _hard_reset(writer)  # RST, not FIN
                    break
                if fault is FaultType.GARBAGE:
                    writer.write(config.garbage_bytes())
                    await writer.drain()
                    writer.close()
                    break
                # STALL: keep the socket open, deliver nothing more; keep
                # draining upstream so its write side never blocks
                stalled = True
        except (ConnectionError, OSError):
            pass


class ChaosStreamReader:
    """``asyncio.StreamReader`` wrapper injecting read-side faults.

    Wraps the *inbound* side of a node (see ``FullNode(chaos=...)``): the
    node's reads of what the remote sent get delayed, truncated, replaced
    with garbage, reset, or stalled — so a localhost simnet contains
    misbehaving peers without any proxy processes.
    """

    def __init__(self, inner: asyncio.StreamReader, config: ChaosConfig) -> None:
        self._inner = inner
        self.config = config
        self._passed = 0

    async def _fault_gate(self, size: int) -> None:
        """Apply the configured fault before delivering ``size`` bytes."""
        config = self.config
        fault = config.fault
        if fault is FaultType.LATENCY:
            await asyncio.sleep(config.latency)
            return
        if self._passed + size <= config.after_bytes:
            return
        if fault is FaultType.STALL:
            # never deliver: park until the connection handler is cancelled
            await asyncio.get_running_loop().create_future()
        if fault is FaultType.RESET:
            raise ConnectionResetError("chaos: injected reset")
        if fault is FaultType.TRUNCATE:
            raise asyncio.IncompleteReadError(partial=b"", expected=size)
        # GARBAGE is handled by the read methods (they substitute bytes)

    async def readexactly(self, size: int) -> bytes:
        await self._fault_gate(size)
        data = await self._inner.readexactly(size)
        self._passed += len(data)
        if self.config.fault is FaultType.GARBAGE and self._passed > self.config.after_bytes:
            junk = self.config.garbage_bytes()
            return (junk * (size // len(junk) + 1))[:size]
        return data

    async def read(self, size: int = -1) -> bytes:
        await self._fault_gate(max(size, 1))
        data = await self._inner.read(size)
        self._passed += len(data)
        if self.config.fault is FaultType.GARBAGE and self._passed > self.config.after_bytes:
            junk = self.config.garbage_bytes()
            return (junk * (len(data) // len(junk) + 1))[: len(data)]
        return data

    def at_eof(self) -> bool:
        return self._inner.at_eof()


class DatagramFault(enum.Enum):
    """What the chaos layer does to an outbound UDP datagram.

    Fault → observable mapping (asserted by ``tests/test_chaos_discovery.py``):

    ========== ==========================================================
    DROP       datagram never sent → PONG/NEIGHBORS waits time out
    DUPLICATE  datagram sent twice → receiver handles the replay
    REORDER    consecutive pair swapped on the wire
    CORRUPT    one byte flipped past the hash prefix → receiver counts a
               bad packet and the reply never comes
    ========== ==========================================================
    """

    DROP = "drop"
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class DatagramChaosConfig:
    """One datagram fault, fully parameterised — no ambient randomness."""

    fault: DatagramFault
    #: fault only the first N outbound datagrams, then send cleanly
    #: (0 = every datagram); lets tests drive "drop once, retry succeeds"
    first: int = 0


def _corrupt_datagram(data: bytes) -> bytes:
    """Flip one byte past the 32-byte hash prefix (discv4 framing), so the
    receiver's hash check fails and the datagram counts as a bad packet."""
    if not data:
        return data
    index = 32 if len(data) > 32 else len(data) - 1
    return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]


class ChaosDatagramTransport:
    """``asyncio.DatagramTransport`` wrapper faulting *outbound* datagrams.

    Wraps the transport a :class:`~repro.discovery.protocol.DiscoveryService`
    sends through; inbound datagrams are untouched (fault the other side's
    transport to disturb them).  ``on_fault(fault_name)`` is an optional
    observability hook — the chaos layer itself has no telemetry
    dependency, the owner wires the hook into whatever instrument it keeps.
    """

    def __init__(
        self,
        inner: asyncio.DatagramTransport,
        config: DatagramChaosConfig,
        on_fault: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._inner = inner
        self.config = config
        self.on_fault = on_fault
        self.sent = 0
        self.faults_injected = 0
        self._held: Optional[Tuple[bytes, Optional[tuple]]] = None

    def _record(self, fault: DatagramFault) -> None:
        self.faults_injected += 1
        if self.on_fault is not None:
            self.on_fault(fault.value)

    def _flush_held(self) -> None:
        if self._held is not None:
            data, addr = self._held
            self._held = None
            self._inner.sendto(data, addr)

    def sendto(self, data: bytes, addr=None) -> None:
        self.sent += 1
        if self.config.first and self.sent > self.config.first:
            self._flush_held()
            self._inner.sendto(data, addr)
            return
        fault = self.config.fault
        if fault is DatagramFault.DROP:
            self._record(fault)
            return
        if fault is DatagramFault.DUPLICATE:
            self._record(fault)
            self._inner.sendto(data, addr)
            self._inner.sendto(data, addr)
            return
        if fault is DatagramFault.CORRUPT:
            self._record(fault)
            self._inner.sendto(_corrupt_datagram(data), addr)
            return
        # REORDER: hold one datagram, send its successor first, then it —
        # a deterministic pair swap
        if self._held is None:
            self._held = (data, addr)
            return
        self._record(fault)
        held_data, held_addr = self._held
        self._held = None
        self._inner.sendto(data, addr)
        self._inner.sendto(held_data, held_addr)

    def close(self) -> None:
        # a REORDER hold must not out-live the transport: deliver it late
        # rather than never
        self._flush_held()
        self._inner.close()

    def abort(self) -> None:
        self._held = None
        self._inner.abort()

    def __getattr__(self, name: str):
        # everything else (get_extra_info, is_closing, ...) passes through
        return getattr(self._inner, name)
