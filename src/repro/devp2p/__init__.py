"""DEVp2p: the application-session protocol above RLPx.

Once the encrypted channel exists, peers exchange HELLO messages describing
their client, capabilities, and listening port; negotiate shared
subprotocols; keep the session alive with PING/PONG; and end it with a
DISCONNECT carrying one of sixteen reason codes (paper §2.2, Table 1).
"""

from repro.devp2p.messages import (
    Capability,
    DisconnectMessage,
    DisconnectReason,
    HelloMessage,
    PingMessage,
    PongMessage,
    HELLO_CODE,
    DISCONNECT_CODE,
    PING_CODE,
    PONG_CODE,
)
from repro.devp2p.capabilities import match_capabilities, offset_table
from repro.devp2p.peer import DevP2PPeer

__all__ = [
    "Capability",
    "HelloMessage",
    "DisconnectMessage",
    "DisconnectReason",
    "PingMessage",
    "PongMessage",
    "HELLO_CODE",
    "DISCONNECT_CODE",
    "PING_CODE",
    "PONG_CODE",
    "match_capabilities",
    "offset_table",
    "DevP2PPeer",
]
