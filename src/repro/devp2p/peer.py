"""The DEVp2p peer state machine over an RLPx session.

Wraps an :class:`~repro.rlpx.session.RLPxSession` with the base-protocol
rules: HELLO must be the first message each way; DISCONNECT may arrive at
any time (raised as :class:`~repro.errors.PeerDisconnected`); PINGs are
answered automatically; subprotocol codes are translated through the
negotiated offset table.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.devp2p.capabilities import (
    ProtocolOffset,
    match_capabilities,
    offset_table,
    route_code,
)
from repro.devp2p.messages import (
    DISCONNECT_CODE,
    HELLO_CODE,
    PING_CODE,
    PONG_CODE,
    DisconnectMessage,
    DisconnectReason,
    HelloMessage,
    PingMessage,
    PongMessage,
)
from repro.errors import PeerDisconnected, ProtocolError
from repro.rlp import codec
from repro.rlpx.session import RLPxSession


class DevP2PPeer:
    """One DEVp2p session with a remote peer."""

    def __init__(self, session: RLPxSession, our_hello: HelloMessage) -> None:
        self.session = session
        self.our_hello = our_hello
        self.remote_hello: Optional[HelloMessage] = None
        self.offsets: list[ProtocolOffset] = []
        self.disconnect_reason: Optional[int] = None
        self._closed = False

    @property
    def remote_node_id(self) -> bytes:
        return self.session.remote_node_id

    async def handshake(self) -> HelloMessage:
        """Exchange HELLOs and negotiate capabilities.

        Raises :class:`PeerDisconnected` if the peer sends DISCONNECT
        instead of HELLO (the dominant outcome for a crawler — Table 1), and
        :class:`ProtocolError` for anything else out of order.
        """
        await self.session.send_message(HELLO_CODE, codec.encode(self.our_hello.serialize_rlp()))
        code, payload = await self.session.read_message()
        if code == DISCONNECT_CODE:
            message = DisconnectMessage.decode(payload)
            self.disconnect_reason = message.reason
            raise PeerDisconnected(message.reason_enum or message.reason)
        if code != HELLO_CODE:
            raise ProtocolError(f"expected HELLO, got message code {code:#x}")
        self.remote_hello = HelloMessage.decode(payload)
        shared = match_capabilities(
            list(self.our_hello.capabilities), list(self.remote_hello.capabilities)
        )
        self.offsets = offset_table(shared)
        return self.remote_hello

    def negotiated(self, name: str) -> Optional[ProtocolOffset]:
        """The offset entry for subprotocol ``name`` if negotiated."""
        for entry in self.offsets:
            if entry.capability.name == name:
                return entry
        return None

    async def send_subprotocol(self, name: str, relative_code: int, payload: bytes) -> None:
        """Send a message on a negotiated subprotocol."""
        entry = self.negotiated(name)
        if entry is None:
            raise ProtocolError(f"subprotocol {name!r} was not negotiated")
        if relative_code >= entry.length:
            raise ProtocolError(
                f"code {relative_code} out of range for {name} (len {entry.length})"
            )
        await self.session.send_message(entry.offset + relative_code, payload)

    async def read_subprotocol(self) -> tuple[str, int, bytes]:
        """Read the next subprotocol message → (name, relative code, payload).

        Base-protocol housekeeping (PING→PONG, ignoring stray PONGs) is
        handled internally; DISCONNECT raises :class:`PeerDisconnected`.
        """
        while True:
            code, payload = await self.session.read_message()
            if code == PING_CODE:
                await self.session.send_message(PONG_CODE, codec.encode([]))
                continue
            if code == PONG_CODE:
                continue
            if code == DISCONNECT_CODE:
                message = DisconnectMessage.decode(payload)
                self.disconnect_reason = message.reason
                raise PeerDisconnected(message.reason_enum or message.reason)
            if code == HELLO_CODE:
                raise ProtocolError("unexpected second HELLO")
            entry = route_code(self.offsets, code)
            if entry is None:
                raise ProtocolError(f"message code {code:#x} outside negotiated ranges")
            return entry.capability.name, code - entry.offset, payload

    async def ping(self) -> None:
        """Send a DEVp2p keepalive PING."""
        await self.session.send_message(PING_CODE, codec.encode([]))

    async def disconnect(self, reason: DisconnectReason) -> None:
        """Send DISCONNECT and close the transport."""
        if self._closed:
            return
        self._closed = True
        try:
            message = DisconnectMessage(reason=int(reason))
            await self.session.send_message(DISCONNECT_CODE, message.encode())
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        self.session.close()

    def abort(self) -> None:
        """Close without a DISCONNECT (connection already broken)."""
        self._closed = True
        self.session.close()
