"""DEVp2p base-protocol messages.

The base protocol owns message codes 0x00-0x0f; negotiated subprotocols are
stacked above 0x10 (see :mod:`repro.devp2p.capabilities`).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import DeserializationError
from repro.rlp.sedes import (
    Serializable,
    Sedes,
    big_endian_int,
    binary,
    text,
)

HELLO_CODE = 0x00
DISCONNECT_CODE = 0x01
PING_CODE = 0x02
PONG_CODE = 0x03

#: First message code available to negotiated subprotocols.
BASE_PROTOCOL_LENGTH = 0x10

#: DEVp2p protocol version spoken by Geth 1.7.x (the NodeFinder base).
DEVP2P_VERSION = 5


class DisconnectReason(enum.IntEnum):
    """DEVp2p disconnect reason codes (paper Table 1 uses these labels)."""

    DISCONNECT_REQUESTED = 0x00
    TCP_ERROR = 0x01
    BREACH_OF_PROTOCOL = 0x02
    USELESS_PEER = 0x03
    TOO_MANY_PEERS = 0x04
    ALREADY_CONNECTED = 0x05
    INCOMPATIBLE_VERSION = 0x06
    NULL_NODE_IDENTITY = 0x07
    CLIENT_QUITTING = 0x08
    UNEXPECTED_IDENTITY = 0x09
    SELF_CONNECTION = 0x0A
    READ_TIMEOUT = 0x0B
    SUBPROTOCOL_ERROR = 0x10

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's Table 1 rows."""
        return _REASON_LABELS[self]


_REASON_LABELS = {
    DisconnectReason.DISCONNECT_REQUESTED: "Disconnect requested",
    DisconnectReason.TCP_ERROR: "TCP sub-system error",
    DisconnectReason.BREACH_OF_PROTOCOL: "Breach of protocol",
    DisconnectReason.USELESS_PEER: "Useless peer",
    DisconnectReason.TOO_MANY_PEERS: "Too many peers",
    DisconnectReason.ALREADY_CONNECTED: "Already connected",
    DisconnectReason.INCOMPATIBLE_VERSION: "Incompatible P2P version",
    DisconnectReason.NULL_NODE_IDENTITY: "Null node identity",
    DisconnectReason.CLIENT_QUITTING: "Client quitting",
    DisconnectReason.UNEXPECTED_IDENTITY: "Unexpected identity",
    DisconnectReason.SELF_CONNECTION: "Connected to self",
    DisconnectReason.READ_TIMEOUT: "Read timeout",
    DisconnectReason.SUBPROTOCOL_ERROR: "Subprotocol error",
}


class Capability(NamedTuple):
    """A (protocol-name, version) pair advertised in HELLO."""

    name: str
    version: int

    def serialize(self) -> list:
        return [text.serialize(self.name), big_endian_int.serialize(self.version)]

    @classmethod
    def deserialize(cls, serial: object) -> "Capability":
        if not isinstance(serial, list) or len(serial) != 2:
            raise DeserializationError("capability must be a [name, version] pair")
        return cls(text.deserialize(serial[0]), big_endian_int.deserialize(serial[1]))


class _CapabilityListSedes(Sedes):
    def serialize(self, obj: object) -> list:
        if not isinstance(obj, (list, tuple)):
            raise DeserializationError("expected a list of capabilities")
        return [cap.serialize() for cap in obj]

    def deserialize(self, serial: object) -> tuple:
        if not isinstance(serial, list):
            raise DeserializationError("expected RLP list of capabilities")
        return tuple(Capability.deserialize(item) for item in serial)


class HelloMessage(Serializable):
    """HELLO: protocol version, client name, capabilities, port, node ID.

    The ``listen_port`` field is de facto ignored by clients (paper §2.2
    footnote) — port information comes from the RLPx layer.
    """

    code = HELLO_CODE
    allow_extra_fields = True
    fields = [
        ("version", big_endian_int),
        ("client_id", text),
        ("capabilities", _CapabilityListSedes()),
        ("listen_port", big_endian_int),
        ("node_id", binary),
    ]

    def capability_strings(self) -> list[str]:
        """Capabilities as ``name/version`` strings, e.g. ``eth/63``."""
        return [f"{cap.name}/{cap.version}" for cap in self.capabilities]

    def supports(self, name: str, version: int | None = None) -> bool:
        return any(
            cap.name == name and (version is None or cap.version == version)
            for cap in self.capabilities
        )


class DisconnectMessage(Serializable):
    """DISCONNECT with an optional reason code."""

    code = DISCONNECT_CODE
    fields = [("reason", big_endian_int)]

    @property
    def reason_enum(self) -> DisconnectReason | None:
        """The typed reason, or None for codes Parity calls "Unknown"."""
        try:
            return DisconnectReason(self.reason)
        except ValueError:
            return None

    @classmethod
    def deserialize_rlp(cls, serial: object) -> "DisconnectMessage":
        # Geth tolerates a bare integer as well as the canonical [reason].
        if isinstance(serial, bytes):
            return cls(reason=int.from_bytes(serial, "big"))
        if isinstance(serial, list) and not serial:
            return cls(reason=DisconnectReason.DISCONNECT_REQUESTED.value)
        return super().deserialize_rlp(serial)  # type: ignore[return-value]


class PingMessage(Serializable):
    """DEVp2p-level keepalive probe (distinct from the RLPx UDP PING)."""

    code = PING_CODE
    fields = ()


class PongMessage(Serializable):
    """Reply to :class:`PingMessage`."""

    code = PONG_CODE
    fields = ()
