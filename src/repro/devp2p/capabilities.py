"""Capability negotiation.

Both HELLOs list ``(name, version)`` capabilities.  The shared set is
computed per Geth's ``matchProtocols``: for each name both sides support,
pick the highest common version; order the shared capabilities
alphabetically by name; and assign each a contiguous message-code range
starting at 0x10, sized by the protocol's message count.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from repro.devp2p.messages import BASE_PROTOCOL_LENGTH, Capability

#: Message-space sizes for known subprotocols (Geth's Protocol.Length).
PROTOCOL_LENGTHS = {
    ("eth", 62): 8,
    ("eth", 63): 17,
    ("les", 1): 15,
    ("les", 2): 21,
    ("bzz", 0): 14,
    ("shh", 6): 300,
    ("pip", 1): 21,
}

DEFAULT_PROTOCOL_LENGTH = 16


def protocol_length(capability: Capability) -> int:
    """Number of message codes a capability occupies."""
    return PROTOCOL_LENGTHS.get(
        (capability.name, capability.version), DEFAULT_PROTOCOL_LENGTH
    )


def match_capabilities(
    ours: Sequence[Capability], theirs: Sequence[Capability]
) -> list[Capability]:
    """The negotiated shared capabilities, name-sorted, best version each."""
    theirs_set = set(theirs)
    best: dict[str, Capability] = {}
    for capability in ours:
        if capability not in theirs_set:
            continue
        current = best.get(capability.name)
        if current is None or capability.version > current.version:
            best[capability.name] = capability
    return sorted(best.values(), key=lambda capability: capability.name)


class ProtocolOffset(NamedTuple):
    """A negotiated capability and its first message code."""

    capability: Capability
    offset: int
    length: int

    def contains(self, code: int) -> bool:
        return self.offset <= code < self.offset + self.length


def offset_table(shared: Iterable[Capability]) -> list[ProtocolOffset]:
    """Assign message-code ranges to the negotiated capabilities."""
    table: list[ProtocolOffset] = []
    offset = BASE_PROTOCOL_LENGTH
    for capability in shared:
        length = protocol_length(capability)
        table.append(ProtocolOffset(capability, offset, length))
        offset += length
    return table


def route_code(table: Sequence[ProtocolOffset], code: int) -> ProtocolOffset | None:
    """Find which negotiated protocol owns absolute message code ``code``."""
    for entry in table:
        if entry.contains(code):
            return entry
    return None
