"""Genesis block constructors.

:func:`mainnet_genesis` rebuilds the *real* Ethereum Mainnet genesis header
field-for-field; its hash must come out as the famous
``d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3``
(paper §2.3) — a strong known-answer test for our RLP codec and Keccak.

:func:`custom_genesis` mints genesis headers for the thousands of
alternative networks the paper observes (Figure 9): Ethereum Classic shares
Mainnet's genesis, while Expanse, Musicoin, Pirl, Ubiq, private chains, and
misconfigured one-off networks each have their own.
"""

from __future__ import annotations

from repro.chain.header import EMPTY_UNCLES_HASH, BlockHeader
from repro.crypto.keccak import keccak256

#: The real Mainnet genesis hash.
MAINNET_GENESIS_HASH = bytes.fromhex(
    "d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3"
)

_MAINNET_STATE_ROOT = bytes.fromhex(
    "d7f8974fb5ac78d9ac099b9ad5018bedc2ce0a72dad1827a1709da30580f0544"
)
_EMPTY_TRIE_ROOT = bytes.fromhex(
    "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
)
_MAINNET_EXTRA_DATA = bytes.fromhex(
    "11bbe8db4e347b4e8c937c1c8370e4b5ed33adb3db69cbdb7a38e1e50b1b82fa"
)
_MAINNET_NONCE = bytes.fromhex("0000000000000042")
_MAINNET_DIFFICULTY = 0x400000000  # 17,179,869,184


def mainnet_genesis() -> BlockHeader:
    """The genuine Ethereum Mainnet genesis header."""
    return BlockHeader(
        parent_hash=b"\x00" * 32,
        uncles_hash=EMPTY_UNCLES_HASH,
        coinbase=b"\x00" * 20,
        state_root=_MAINNET_STATE_ROOT,
        tx_root=_EMPTY_TRIE_ROOT,
        receipt_root=_EMPTY_TRIE_ROOT,
        bloom=b"\x00" * 256,
        difficulty=_MAINNET_DIFFICULTY,
        number=0,
        gas_limit=5000,
        gas_used=0,
        timestamp=0,
        extra_data=_MAINNET_EXTRA_DATA,
        mix_hash=b"\x00" * 32,
        nonce=_MAINNET_NONCE,
    )


def custom_genesis(
    chain_name: str,
    difficulty: int = 0x20000,
    gas_limit: int = 5000,
    timestamp: int = 0,
) -> BlockHeader:
    """A deterministic genesis for a named alternative network.

    The chain name is folded into ``extra_data`` and the state root, so
    every distinct name yields a distinct genesis hash — mirroring the
    18,829 genesis hashes the paper observed (§6.1).
    """
    seed = keccak256(b"genesis:" + chain_name.encode("utf-8"))
    return BlockHeader(
        parent_hash=b"\x00" * 32,
        uncles_hash=EMPTY_UNCLES_HASH,
        coinbase=b"\x00" * 20,
        state_root=seed,
        tx_root=_EMPTY_TRIE_ROOT,
        receipt_root=_EMPTY_TRIE_ROOT,
        bloom=b"\x00" * 256,
        difficulty=difficulty,
        number=0,
        gas_limit=gas_limit,
        gas_used=0,
        timestamp=timestamp,
        extra_data=chain_name.encode("utf-8")[:32],
        mix_hash=b"\x00" * 32,
        nonce=b"\x00" * 8,
    )
