"""A validated, fully-linked header chain.

``HeaderChain`` stores real :class:`~repro.chain.header.BlockHeader` objects
whose parent hashes chain correctly, validates appended headers, tracks
total difficulty, and answers GET_BLOCK_HEADERS queries with the exact
origin/amount/skip/reverse semantics of eth/62 (paper §2.3).

A chain can ``mine`` its own continuation deterministically — used by the
localhost integration peers and the examples.  Multi-million-block
histories for the ecosystem simulator come from
:class:`~repro.chain.synthetic.SyntheticChain` instead.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.chain.difficulty import calc_difficulty
from repro.chain.header import EMPTY_TRIE_ROOT, EMPTY_UNCLES_HASH, BlockHeader
from repro.crypto.keccak import keccak256
from repro.errors import ChainError, InvalidHeader
from repro.ethproto.forks import DAO_FORK_BLOCK, DAO_FORK_EXTRA_DATA

#: Average Ethereum block interval circa 2018, seconds.
BLOCK_INTERVAL = 15


class HeaderChain:
    """An append-only header chain rooted at a genesis header."""

    def __init__(self, genesis: BlockHeader, validate: bool = True) -> None:
        if genesis.number != 0:
            raise ChainError("genesis header must have number 0")
        self.validate = validate
        self._headers: list[BlockHeader] = [genesis]
        self._by_hash: dict[bytes, int] = {genesis.hash(): 0}
        self._total_difficulty: list[int] = [genesis.difficulty]

    # -- inspection -----------------------------------------------------------

    @property
    def genesis(self) -> BlockHeader:
        return self._headers[0]

    @property
    def genesis_hash(self) -> bytes:
        return self.genesis.hash()

    @property
    def head(self) -> BlockHeader:
        return self._headers[-1]

    @property
    def best_hash(self) -> bytes:
        return self.head.hash()

    @property
    def height(self) -> int:
        return self.head.number

    @property
    def total_difficulty(self) -> int:
        return self._total_difficulty[-1]

    def __len__(self) -> int:
        return len(self._headers)

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._by_hash

    def header_at(self, number: int) -> Optional[BlockHeader]:
        if 0 <= number < len(self._headers):
            return self._headers[number]
        return None

    def header_by_hash(self, block_hash: bytes) -> Optional[BlockHeader]:
        index = self._by_hash.get(block_hash)
        return self._headers[index] if index is not None else None

    def total_difficulty_at(self, number: int) -> int:
        if not 0 <= number < len(self._headers):
            raise ChainError(f"no block at height {number}")
        return self._total_difficulty[number]

    # -- growth ---------------------------------------------------------------

    def append(self, header: BlockHeader) -> None:
        """Append a header; validates against the current head."""
        if self.validate:
            header.validate_as_child_of(self.head)
        elif header.parent_hash != self.best_hash or header.number != self.height + 1:
            raise InvalidHeader("header does not extend the chain head")
        self._headers.append(header)
        self._by_hash[header.hash()] = header.number
        self._total_difficulty.append(self.total_difficulty + header.difficulty)

    def mine_block(
        self,
        timestamp: Optional[int] = None,
        extra_data: bytes = b"",
        coinbase: Optional[bytes] = None,
    ) -> BlockHeader:
        """Deterministically mine and append the next block."""
        parent = self.head
        number = parent.number + 1
        if timestamp is None:
            timestamp = parent.timestamp + BLOCK_INTERVAL
        if number == DAO_FORK_BLOCK and not extra_data:
            extra_data = DAO_FORK_EXTRA_DATA
        difficulty = calc_difficulty(
            parent_difficulty=parent.difficulty,
            parent_timestamp=parent.timestamp,
            timestamp=timestamp,
            block_number=number,
            parent_has_uncles=parent.uncles_hash != EMPTY_UNCLES_HASH,
        )
        if coinbase is None:
            coinbase = keccak256(b"miner" + number.to_bytes(8, "big"))[:20]
        header = BlockHeader(
            parent_hash=parent.hash(),
            uncles_hash=EMPTY_UNCLES_HASH,
            coinbase=coinbase,
            state_root=keccak256(parent.state_root + number.to_bytes(8, "big")),
            tx_root=EMPTY_TRIE_ROOT,
            receipt_root=EMPTY_TRIE_ROOT,
            bloom=b"\x00" * 256,
            difficulty=difficulty,
            number=number,
            gas_limit=parent.gas_limit,
            gas_used=0,
            timestamp=timestamp,
            extra_data=extra_data,
            mix_hash=b"\x00" * 32,
            nonce=number.to_bytes(8, "big"),
        ).seal()
        self.append(header)
        return header

    def mine(self, count: int) -> None:
        """Mine ``count`` blocks."""
        for _ in range(count):
            self.mine_block()

    # -- queries ----------------------------------------------------------------

    def get_block_headers(
        self,
        origin: Union[int, bytes],
        amount: int,
        skip: int = 0,
        reverse: bool = False,
        max_headers: int = 192,
    ) -> list[BlockHeader]:
        """Answer a GET_BLOCK_HEADERS query (eth/62 semantics).

        ``origin`` may be a block number or hash; unknown origins yield an
        empty answer.  ``max_headers`` caps the response as Geth does.
        """
        if isinstance(origin, bytes):
            start = self._by_hash.get(origin)
            if start is None:
                return []
        else:
            start = origin
        amount = min(amount, max_headers)
        step = -(skip + 1) if reverse else (skip + 1)
        result: list[BlockHeader] = []
        number = start
        for _ in range(amount):
            header = self.header_at(number)
            if header is None:
                break
            result.append(header)
            number += step
            if number < 0:
                break
        return result

    def iter_headers(self) -> Iterable[BlockHeader]:
        return iter(self._headers)
