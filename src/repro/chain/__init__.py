"""Blockchain substrate: headers, chains, forks, difficulty.

NodeFinder never executes transactions, but it must speak fluent *header*
Ethereum: hash headers, answer and issue GET_BLOCK_HEADERS, detect the DAO
fork stamp, and reason about best-block freshness (Figure 14).  This package
provides:

* :mod:`repro.chain.header` — the 15-field Yellow-Paper block header with
  canonical RLP hashing (our Mainnet genesis reproduces the real
  ``d4e567...cb8fa3`` hash, which doubles as a codec known-answer test);
* :mod:`repro.chain.difficulty` — Homestead/Byzantium difficulty rules;
* :mod:`repro.chain.chain` — a fully-linked validated header chain;
* :mod:`repro.chain.synthetic` — an O(1)-per-header deterministic chain used
  by the ecosystem simulator for multi-million-block histories.
"""

from repro.chain.header import BlockHeader, EMPTY_UNCLES_HASH, EMPTY_TRIE_ROOT
from repro.chain.genesis import (
    mainnet_genesis,
    custom_genesis,
    MAINNET_GENESIS_HASH,
)
from repro.chain.chain import HeaderChain
from repro.chain.synthetic import SyntheticChain

__all__ = [
    "BlockHeader",
    "EMPTY_UNCLES_HASH",
    "EMPTY_TRIE_ROOT",
    "mainnet_genesis",
    "custom_genesis",
    "MAINNET_GENESIS_HASH",
    "HeaderChain",
    "SyntheticChain",
]
