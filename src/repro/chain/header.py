"""The Ethereum block header (Yellow Paper §4.3).

Fifteen fields, RLP-encoded; the block hash is the Keccak-256 of the RLP.
Header validation here covers the checks listed in paper §2.3 ("block header
validation"): parent hash linkage, block number, timestamp monotonicity,
difficulty formula, and gas-limit bounds.  Proof-of-work is modelled as a
deterministic mix-hash commitment rather than real ethash (no GPU required;
the network-measurement code paths only need headers to be *checkable*).
"""

from __future__ import annotations

from repro.crypto.keccak import keccak256
from repro.errors import InvalidHeader
from repro.rlp import codec
from repro.rlp.sedes import (
    Binary,
    Serializable,
    address,
    big_endian_int,
    binary,
    hash32,
)

#: keccak256(rlp([])) — the uncles hash of an empty uncle list.
EMPTY_UNCLES_HASH = bytes.fromhex(
    "1dcc4de8dec75d7aab85b567b6ccd41ad312451b948a7413f0a142fd40d49347"
)

#: keccak256(rlp(b'')) wrapped trie root of an empty trie.
EMPTY_TRIE_ROOT = bytes.fromhex(
    "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
)

#: Gas limit floor enforced by header validation.
MIN_GAS_LIMIT = 5000

#: Max extra-data length (32 bytes on Mainnet).
MAX_EXTRA_DATA = 32


class BlockHeader(Serializable):
    """One block header; immutable once constructed."""

    fields = [
        ("parent_hash", hash32),
        ("uncles_hash", hash32),
        ("coinbase", address),
        ("state_root", hash32),
        ("tx_root", hash32),
        ("receipt_root", hash32),
        ("bloom", Binary.fixed_length(256)),
        ("difficulty", big_endian_int),
        ("number", big_endian_int),
        ("gas_limit", big_endian_int),
        ("gas_used", big_endian_int),
        ("timestamp", big_endian_int),
        ("extra_data", binary),
        ("mix_hash", hash32),
        ("nonce", Binary.fixed_length(8)),
    ]

    _hash_cache: bytes | None = None

    def hash(self) -> bytes:
        """keccak256 of the RLP encoding — the canonical block hash."""
        if self._hash_cache is None:
            object.__setattr__(
                self, "_hash_cache", keccak256(codec.encode(self.serialize_rlp()))
            )
        return self._hash_cache

    def hex_hash(self) -> str:
        return self.hash().hex()

    def validate_as_child_of(self, parent: "BlockHeader") -> None:
        """Header validation per Yellow Paper §4.3.4 (paper §2.3).

        Raises :class:`~repro.errors.InvalidHeader` listing the first failed
        check.
        """
        if self.parent_hash != parent.hash():
            raise InvalidHeader(
                f"block {self.number}: parent hash mismatch"
            )
        if self.number != parent.number + 1:
            raise InvalidHeader(
                f"block number {self.number} does not follow {parent.number}"
            )
        if self.timestamp <= parent.timestamp:
            raise InvalidHeader(
                f"block {self.number}: timestamp not after parent"
            )
        if len(self.extra_data) > MAX_EXTRA_DATA:
            raise InvalidHeader(
                f"block {self.number}: extra data {len(self.extra_data)} > 32 bytes"
            )
        if self.gas_used > self.gas_limit:
            raise InvalidHeader(f"block {self.number}: gas used exceeds limit")
        # Gas limit may move at most 1/1024 of the parent's per block.
        bound = parent.gas_limit // 1024
        if abs(self.gas_limit - parent.gas_limit) >= bound or self.gas_limit < MIN_GAS_LIMIT:
            raise InvalidHeader(f"block {self.number}: gas limit out of bounds")
        from repro.chain.difficulty import calc_difficulty

        expected = calc_difficulty(
            parent_difficulty=parent.difficulty,
            parent_timestamp=parent.timestamp,
            timestamp=self.timestamp,
            block_number=self.number,
            parent_has_uncles=parent.uncles_hash != EMPTY_UNCLES_HASH,
        )
        if self.difficulty != expected:
            raise InvalidHeader(
                f"block {self.number}: difficulty {self.difficulty} != {expected}"
            )
        if not self.check_pow():
            raise InvalidHeader(f"block {self.number}: proof-of-work check failed")

    def check_pow(self) -> bool:
        """Simulated proof-of-work check (substitution for ethash).

        A header "has valid PoW" when its mix-hash commits to the header
        contents and nonce: ``mix_hash == keccak256(pow_seal_input)``.
        Real ethash also requires ``hash <= 2^256/difficulty``; that search
        cost is irrelevant to network measurement, so we keep only the
        commitment structure (documented in DESIGN.md).
        """
        return self.mix_hash == self.pow_commitment()

    def pow_commitment(self) -> bytes:
        sealed = self.copy(mix_hash=b"\x00" * 32)
        return keccak256(codec.encode(sealed.serialize_rlp()) + self.nonce)

    def seal(self) -> "BlockHeader":
        """Return a copy with a valid simulated PoW seal."""
        return self.copy(mix_hash=self.pow_commitment())
