"""Block difficulty rules across Ethereum's 2015-2018 hard forks.

Implements the Frontier, Homestead (EIP-2), and Byzantium (EIP-100 /
EIP-649) difficulty formulas, including the exponential "difficulty bomb"
and Byzantium's 3,000,000-block bomb delay.  Used by header validation and
by the synthetic chains to produce realistic total-difficulty values in
STATUS messages.
"""

from __future__ import annotations

HOMESTEAD_BLOCK = 1_150_000
BYZANTIUM_BLOCK = 4_370_000

MIN_DIFFICULTY = 131_072
_BOMB_DELAY_BYZANTIUM = 3_000_000


def calc_difficulty(
    parent_difficulty: int,
    parent_timestamp: int,
    timestamp: int,
    block_number: int,
    parent_has_uncles: bool = False,
) -> int:
    """Difficulty of the block at ``block_number`` given its parent."""
    if timestamp <= parent_timestamp:
        raise ValueError("block timestamp must exceed parent timestamp")
    adjustment_unit = parent_difficulty // 2048
    if block_number >= BYZANTIUM_BLOCK:
        # EIP-100: uncle-aware adjustment.
        uncle_term = 2 if parent_has_uncles else 1
        coefficient = max(uncle_term - (timestamp - parent_timestamp) // 9, -99)
        difficulty = parent_difficulty + adjustment_unit * coefficient
        bomb_number = max(block_number - _BOMB_DELAY_BYZANTIUM, 0)
    elif block_number >= HOMESTEAD_BLOCK:
        coefficient = max(1 - (timestamp - parent_timestamp) // 10, -99)
        difficulty = parent_difficulty + adjustment_unit * coefficient
        bomb_number = block_number
    else:
        if timestamp - parent_timestamp < 13:
            difficulty = parent_difficulty + adjustment_unit
        else:
            difficulty = parent_difficulty - adjustment_unit
        bomb_number = block_number
    period = bomb_number // 100_000
    if period >= 2:
        difficulty += 2 ** (period - 2)
    return max(difficulty, MIN_DIFFICULTY)
