"""O(1)-per-header synthetic chains for ecosystem-scale simulation.

The 2018 Mainnet had ~5.9M blocks; materialising real chained headers for
thousands of simulated peers is pointless work.  ``SyntheticChain`` derives
any header on demand from ``(chain seed, height)``: hashes follow
``H(n) = keccak256(seed || n)``, parent links are consistent by
construction (``parent_hash(n) = H(n-1)``), DAO-fork extra data and fork
heights behave like the real chain, and total difficulty uses a calibrated
closed form.  The *header hash* is the synthetic ``H(n)`` rather than the
RLP hash — the one deliberate deviation, documented in DESIGN.md, that buys
constant-time access.  Genesis hashes are pinned explicitly so the Mainnet
simulation advertises the paper's real ``d4e567...cb8fa3``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Union

from repro.chain.chain import BLOCK_INTERVAL
from repro.chain.genesis import MAINNET_GENESIS_HASH, custom_genesis
from repro.chain.header import EMPTY_TRIE_ROOT, EMPTY_UNCLES_HASH, BlockHeader
from repro.crypto.keccak import keccak256, keccak256_batch
from repro.errors import ChainError
from repro.ethproto.forks import DAO_FORK_BLOCK, DAO_FORK_EXTRA_DATA

#: Approximate Mainnet head height on 2018-04-23 (paper snapshot day).
MAINNET_HEIGHT_APRIL_2018 = 5_463_000

#: Approximate Mainnet total difficulty at that height (paper era), used to
#: calibrate the closed-form TD so STATUS messages look realistic.
MAINNET_TD_APRIL_2018 = 3_907_000_000_000_000_000_000

#: Mainnet launch, 2015-07-30, unix time.
MAINNET_LAUNCH_TIMESTAMP = 1_438_269_988


# Module-level so `at_height` views (which share the chain seed) reuse the
# same memo instead of re-hashing per clone; every STATUS exchange asks for
# the best hash, making this the hottest keccak call site.  A plain dict
# rather than lru_cache so `warm_synthetic_hashes` can pre-seed it in bulk.
_HASH_MEMO: dict = {}

#: hard bound on the memo; a multi-week 100k run cannot grow it unboundedly
_HASH_MEMO_MAX = 1 << 20


def _synthetic_hash(seed: bytes, number: int) -> bytes:
    key = (seed, number)
    value = _HASH_MEMO.get(key)
    if value is None:
        if len(_HASH_MEMO) >= _HASH_MEMO_MAX:
            _HASH_MEMO.clear()
        value = _HASH_MEMO[key] = keccak256(seed + number.to_bytes(8, "big"))
    return value


def warm_synthetic_hashes(seed: bytes, numbers: Iterable[int]) -> int:
    """Bulk-fill the hash memo for ``numbers`` on chain ``seed``.

    One vectorised keccak pass over the not-yet-cached heights, so a
    simulation that knows which best-hashes its population will advertise
    (every node's ``head - lag``) pays ~10us per hash up front instead of
    ~200us per miss on the dial path.  Returns the number of hashes
    computed; values are identical to the lazy path byte-for-byte.
    """
    missing = sorted(
        {n for n in numbers if n > 0 and (seed, n) not in _HASH_MEMO}
    )
    if not missing:
        return 0
    payloads = [seed + n.to_bytes(8, "big") for n in missing]
    for number, digest in zip(missing, keccak256_batch(payloads)):
        _HASH_MEMO[(seed, number)] = digest
    return len(missing)


class SyntheticChain:
    """A deterministic pseudo-chain with constant-time header access."""

    def __init__(
        self,
        name: str = "mainnet",
        genesis_hash: bytes | None = None,
        height: int = MAINNET_HEIGHT_APRIL_2018,
        supports_dao_fork: bool = True,
        network_id: int = 1,
        td_per_block: int | None = None,
        start_timestamp: int = MAINNET_LAUNCH_TIMESTAMP,
    ) -> None:
        self.name = name
        self.network_id = network_id
        self.height = height
        self.supports_dao_fork = supports_dao_fork
        self.start_timestamp = start_timestamp
        if genesis_hash is None:
            genesis_hash = (
                MAINNET_GENESIS_HASH
                if name in ("mainnet", "classic")
                else custom_genesis(name).hash()
            )
        self.genesis_hash = genesis_hash
        self._seed = keccak256(b"chain:" + name.encode("utf-8") + genesis_hash)
        if td_per_block is None:
            td_per_block = max(
                MAINNET_TD_APRIL_2018 // max(MAINNET_HEIGHT_APRIL_2018, 1), 1
            )
        self.td_per_block = td_per_block

    # -- identity ------------------------------------------------------------

    def block_hash(self, number: int) -> bytes:
        """The synthetic hash of block ``number``."""
        if number < 0:
            raise ChainError(f"negative block number {number}")
        if number == 0:
            return self.genesis_hash
        return _synthetic_hash(self._seed, number)

    @property
    def best_hash(self) -> bytes:
        return self.block_hash(self.height)

    def warm_heights(self, numbers: Iterable[int]) -> int:
        """Pre-hash block ``numbers`` into the shared memo in one batch."""
        return warm_synthetic_hashes(self._seed, numbers)

    def total_difficulty_at(self, number: int) -> int:
        """Closed-form cumulative difficulty (linear calibration)."""
        return (number + 1) * self.td_per_block

    @property
    def total_difficulty(self) -> int:
        return self.total_difficulty_at(self.height)

    def advance(self, blocks: int = 1) -> None:
        """Grow the chain head (the simulator's clock-tick hook)."""
        self.height += blocks

    def at_height(self, height: int) -> "SyntheticChain":
        """A view of the same chain truncated to ``height`` (stale nodes)."""
        clone = SyntheticChain(
            name=self.name,
            genesis_hash=self.genesis_hash,
            height=height,
            supports_dao_fork=self.supports_dao_fork,
            network_id=self.network_id,
            td_per_block=self.td_per_block,
            start_timestamp=self.start_timestamp,
        )
        return clone

    # -- headers ---------------------------------------------------------------

    def extra_data_for(self, number: int) -> bytes:
        if (
            self.supports_dao_fork
            and DAO_FORK_BLOCK <= number < DAO_FORK_BLOCK + 10
        ):
            return DAO_FORK_EXTRA_DATA
        return b""

    @lru_cache(maxsize=4096)
    def header_at(self, number: int) -> BlockHeader:
        """Materialise the header for block ``number`` (cached)."""
        if number < 0 or number > self.height:
            raise ChainError(f"no block at height {number} (head {self.height})")
        return BlockHeader(
            parent_hash=self.block_hash(number - 1) if number else b"\x00" * 32,
            uncles_hash=EMPTY_UNCLES_HASH,
            coinbase=self._seed[:20],
            state_root=keccak256(self._seed + b"state" + number.to_bytes(8, "big")),
            tx_root=EMPTY_TRIE_ROOT,
            receipt_root=EMPTY_TRIE_ROOT,
            bloom=b"\x00" * 256,
            difficulty=self.td_per_block,
            number=number,
            gas_limit=8_000_000,
            gas_used=0,
            timestamp=self.start_timestamp + number * BLOCK_INTERVAL,
            extra_data=self.extra_data_for(number),
            mix_hash=b"\x00" * 32,
            nonce=number.to_bytes(8, "big"),
        )

    def get_block_headers(
        self,
        origin: Union[int, bytes],
        amount: int,
        skip: int = 0,
        reverse: bool = False,
        max_headers: int = 192,
    ) -> list[BlockHeader]:
        """GET_BLOCK_HEADERS semantics over the synthetic history."""
        if isinstance(origin, bytes):
            # Hash lookups over a synthetic chain: only head/genesis resolve,
            # which is all the crawler and sync paths ever ask for.
            if origin == self.best_hash:
                start = self.height
            elif origin == self.genesis_hash:
                start = 0
            else:
                return []
        else:
            start = origin
        amount = min(amount, max_headers)
        step = -(skip + 1) if reverse else (skip + 1)
        result = []
        number = start
        for _ in range(amount):
            if number < 0 or number > self.height:
                break
            result.append(self.header_at(number))
            number += step
        return result
