"""Typed RLP serialisers ("sedes").

A sedes converts between a Python value and the raw RLP structure (bytes /
nested lists) understood by :mod:`repro.rlp.codec`.  Message schemas across
the stack (discv4 packets, DEVp2p HELLO, eth STATUS, block headers, ...) are
declared as :class:`Serializable` subclasses with a ``fields`` list, matching
how Geth and pyrlp declare theirs.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable, Sequence

from repro.errors import DeserializationError
from repro.rlp import codec


class Sedes:
    """Abstract base: ``serialize`` to raw RLP structure, ``deserialize`` back."""

    def serialize(self, obj: Any) -> Any:
        raise NotImplementedError

    def deserialize(self, serial: Any) -> Any:
        raise NotImplementedError

    def encode(self, obj: Any) -> bytes:
        """Serialize and RLP-encode in one step."""
        return codec.encode(self.serialize(obj))

    def decode(self, data: bytes) -> Any:
        """RLP-decode and deserialize in one step."""
        return self.deserialize(codec.decode(data))


class BigEndianInt(Sedes):
    """Non-negative integer as minimal big-endian bytes.

    ``length`` pins the serialised width (e.g. 32 for a uint256 field);
    ``None`` allows any width.
    """

    def __init__(self, length: int | None = None) -> None:
        self.length = length

    def serialize(self, obj: Any) -> bytes:
        if isinstance(obj, bool) or not isinstance(obj, int):
            raise DeserializationError(f"expected int, got {type(obj).__name__}")
        if obj < 0:
            raise DeserializationError(f"cannot serialize negative int {obj}")
        if self.length is not None:
            if obj >= 1 << (8 * self.length):
                raise DeserializationError(
                    f"{obj} does not fit in {self.length} bytes"
                )
            return obj.to_bytes(self.length, "big")
        if obj == 0:
            return b""
        return obj.to_bytes((obj.bit_length() + 7) // 8, "big")

    def deserialize(self, serial: Any) -> int:
        if not isinstance(serial, bytes):
            raise DeserializationError("expected byte string for integer field")
        if self.length is not None and len(serial) != self.length:
            raise DeserializationError(
                f"expected {self.length} bytes, got {len(serial)}"
            )
        if self.length is None and serial.startswith(b"\x00"):
            raise DeserializationError("integer field has leading zero byte")
        return int.from_bytes(serial, "big")


class Binary(Sedes):
    """Byte string, optionally with length bounds."""

    def __init__(
        self, min_length: int = 0, max_length: int | None = None, allow_empty: bool = True
    ) -> None:
        self.min_length = min_length
        self.max_length = max_length
        self.allow_empty = allow_empty

    @classmethod
    def fixed_length(cls, length: int) -> "Binary":
        """A byte string of exactly ``length`` bytes."""
        return cls(min_length=length, max_length=length)

    def _check(self, data: bytes) -> bytes:
        if not data and self.allow_empty and self.min_length == 0:
            return data
        if len(data) < self.min_length:
            raise DeserializationError(
                f"byte string too short: {len(data)} < {self.min_length}"
            )
        if self.max_length is not None and len(data) > self.max_length:
            raise DeserializationError(
                f"byte string too long: {len(data)} > {self.max_length}"
            )
        return data

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, (bytes, bytearray, memoryview)):
            raise DeserializationError(f"expected bytes, got {type(obj).__name__}")
        return self._check(bytes(obj))

    def deserialize(self, serial: Any) -> bytes:
        if not isinstance(serial, bytes):
            raise DeserializationError("expected byte string")
        return self._check(serial)


class Text(Sedes):
    """UTF-8 string."""

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, str):
            raise DeserializationError(f"expected str, got {type(obj).__name__}")
        return obj.encode("utf-8")

    def deserialize(self, serial: Any) -> str:
        if not isinstance(serial, bytes):
            raise DeserializationError("expected byte string for text field")
        try:
            return serial.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DeserializationError(f"invalid UTF-8: {exc}") from exc


class Boolean(Sedes):
    """Boolean encoded as empty string / 0x01, Geth-style."""

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, bool):
            raise DeserializationError(f"expected bool, got {type(obj).__name__}")
        return b"\x01" if obj else b""

    def deserialize(self, serial: Any) -> bool:
        if serial == b"":
            return False
        if serial == b"\x01":
            return True
        raise DeserializationError(f"invalid boolean encoding: {serial!r}")


class ListSedes(Sedes):
    """Fixed-shape heterogeneous list of sedes."""

    def __init__(self, elements: Sequence[Sedes]) -> None:
        self.elements = list(elements)

    def serialize(self, obj: Any) -> list:
        if not isinstance(obj, (list, tuple)):
            raise DeserializationError("expected list or tuple")
        if len(obj) != len(self.elements):
            raise DeserializationError(
                f"expected {len(self.elements)} elements, got {len(obj)}"
            )
        return [sedes.serialize(item) for sedes, item in zip(self.elements, obj)]

    def deserialize(self, serial: Any) -> tuple:
        if not isinstance(serial, list):
            raise DeserializationError("expected RLP list")
        if len(serial) != len(self.elements):
            raise DeserializationError(
                f"expected {len(self.elements)} elements, got {len(serial)}"
            )
        return tuple(
            sedes.deserialize(item) for sedes, item in zip(self.elements, serial)
        )


class CountableList(Sedes):
    """Homogeneous list of any length."""

    def __init__(self, element_sedes: Sedes, max_length: int | None = None) -> None:
        self.element_sedes = element_sedes
        self.max_length = max_length

    def serialize(self, obj: Any) -> list:
        if not isinstance(obj, (list, tuple)):
            raise DeserializationError("expected list or tuple")
        if self.max_length is not None and len(obj) > self.max_length:
            raise DeserializationError(
                f"list too long: {len(obj)} > {self.max_length}"
            )
        return [self.element_sedes.serialize(item) for item in obj]

    def deserialize(self, serial: Any) -> tuple:
        if not isinstance(serial, list):
            raise DeserializationError("expected RLP list")
        if self.max_length is not None and len(serial) > self.max_length:
            raise DeserializationError(
                f"list too long: {len(serial)} > {self.max_length}"
            )
        return tuple(self.element_sedes.deserialize(item) for item in serial)


class RawSedes(Sedes):
    """Pass-through: value must already be a raw RLP structure."""

    def _check(self, obj: Any) -> Any:
        if isinstance(obj, bytes):
            return obj
        if isinstance(obj, (list, tuple)):
            return [self._check(item) for item in obj]
        raise DeserializationError(
            f"raw sedes accepts bytes / nested lists only, got {type(obj).__name__}"
        )

    def serialize(self, obj: Any) -> Any:
        return self._check(obj)

    def deserialize(self, serial: Any) -> Any:
        return self._check(serial)


class Serializable:
    """Base for RLP message/record classes declared via ``fields``.

    Subclasses set::

        fields = [("field_name", sedes_instance), ...]

    and gain keyword construction, equality, ``serialize_rlp()`` /
    ``deserialize_rlp()``, and ``encode()`` / ``decode()``.
    Extra trailing RLP elements are tolerated on decode when
    ``allow_extra_fields`` is True (forward compatibility, as Geth does for
    HELLO and STATUS).
    """

    fields: ClassVar[Sequence[tuple[str, Sedes]]] = ()
    allow_extra_fields: ClassVar[bool] = False

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        field_names = [name for name, _ in self.fields]
        if len(args) > len(field_names):
            raise TypeError(
                f"{type(self).__name__} takes {len(field_names)} arguments"
            )
        values = dict(zip(field_names, args))
        for name, value in kwargs.items():
            if name not in field_names:
                raise TypeError(f"unknown field {name!r} for {type(self).__name__}")
            if name in values:
                raise TypeError(f"duplicate value for field {name!r}")
            values[name] = value
        missing = [name for name in field_names if name not in values]
        if missing:
            raise TypeError(f"{type(self).__name__} missing fields: {missing}")
        for name in field_names:
            object.__setattr__(self, name, values[name])

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        # Compare list- and tuple-valued fields interchangeably: decoding
        # yields tuples where constructors often receive lists.
        return all(
            _hashable(getattr(self, name)) == _hashable(getattr(other, name))
            for name, _ in self.fields
        )

    def __hash__(self) -> int:
        return hash(
            (type(self).__name__,)
            + tuple(_hashable(getattr(self, name)) for name, _ in self.fields)
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name, _ in self.fields
        )
        return f"{type(self).__name__}({parts})"

    def copy(self, **overrides: Any) -> "Serializable":
        """Return a copy with ``overrides`` applied."""
        values = {name: getattr(self, name) for name, _ in self.fields}
        values.update(overrides)
        return type(self)(**values)

    def serialize_rlp(self) -> list:
        """Return the raw RLP structure (list of serialised fields)."""
        return [sedes.serialize(getattr(self, name)) for name, sedes in self.fields]

    @classmethod
    def deserialize_rlp(cls, serial: Any) -> "Serializable":
        if not isinstance(serial, list):
            raise DeserializationError(f"{cls.__name__}: expected RLP list")
        if len(serial) < len(cls.fields):
            raise DeserializationError(
                f"{cls.__name__}: expected {len(cls.fields)} fields, "
                f"got {len(serial)}"
            )
        if len(serial) > len(cls.fields) and not cls.allow_extra_fields:
            raise DeserializationError(
                f"{cls.__name__}: {len(serial) - len(cls.fields)} extra fields"
            )
        values = {
            name: sedes.deserialize(item)
            for (name, sedes), item in zip(cls.fields, serial)
        }
        return cls(**values)

    def encode(self) -> bytes:
        """RLP-encode this object."""
        return codec.encode(self.serialize_rlp())

    @classmethod
    def decode(cls, data: bytes) -> "Serializable":
        """Decode ``data`` as an instance of this class."""
        return cls.deserialize_rlp(codec.decode(data))


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, tuple):
        return tuple(_hashable(item) for item in value)
    return value


def sedes_for_fields(fields: Iterable[tuple[str, Sedes]]) -> ListSedes:
    """Build a :class:`ListSedes` from a ``fields`` declaration."""
    return ListSedes([sedes for _, sedes in fields])


# Shared singletons used across message schemas.
big_endian_int = BigEndianInt()
uint8 = BigEndianInt(1)
uint16 = BigEndianInt(2)
uint32 = BigEndianInt(4)
uint64 = BigEndianInt(8)
uint256 = BigEndianInt(32)
binary = Binary()
text = Text()
boolean = Boolean()
raw = RawSedes()
address = Binary.fixed_length(20)
hash32 = Binary.fixed_length(32)
