"""Recursive Length Prefix (RLP) serialisation.

RLP is Ethereum's canonical wire encoding: every payload in discv4, the RLPx
handshake, DEVp2p, and the eth subprotocol is RLP.  This package provides the
raw codec (:mod:`repro.rlp.codec`) plus a small typed-serialiser ("sedes")
layer (:mod:`repro.rlp.sedes`) used to declare message schemas.
"""

from repro.rlp.codec import decode, decode_lazy, encode, encode_length
from repro.rlp.sedes import (
    BigEndianInt,
    Binary,
    Boolean,
    CountableList,
    ListSedes,
    RawSedes,
    Serializable,
    Text,
    address,
    big_endian_int,
    binary,
    boolean,
    hash32,
    raw,
    text,
    uint8,
    uint16,
    uint32,
    uint64,
    uint256,
)

__all__ = [
    "encode",
    "decode",
    "decode_lazy",
    "encode_length",
    "BigEndianInt",
    "Binary",
    "Boolean",
    "CountableList",
    "ListSedes",
    "RawSedes",
    "Serializable",
    "Text",
    "address",
    "big_endian_int",
    "binary",
    "boolean",
    "hash32",
    "raw",
    "text",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "uint256",
]
