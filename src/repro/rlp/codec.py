"""The raw RLP codec.

RLP encodes two kinds of items: byte strings and (arbitrarily nested) lists of
items.  The rules, from Appendix B of the Yellow Paper:

* a single byte below ``0x80`` is its own encoding;
* a string of 0-55 bytes is prefixed with ``0x80 + len``;
* a longer string is prefixed with ``0xb7 + len(len)`` and the big-endian
  length;
* a list whose encoded payload is 0-55 bytes is prefixed with ``0xc0 + len``;
* a longer list is prefixed with ``0xf7 + len(len)`` and the big-endian
  length.

Decoding enforces canonical form: no leading zeros in long lengths, no long
form where short form would fit, and no trailing bytes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import DecodingError, EncodingError

RLPItem = Union[bytes, "list[RLPItem]"]

SHORT_STRING = 0x80
LONG_STRING = 0xB7
SHORT_LIST = 0xC0
LONG_LIST = 0xF7
MAX_SHORT_LENGTH = 55


def encode_length(length: int, offset: int) -> bytes:
    """Return the RLP length prefix for a payload of ``length`` bytes.

    ``offset`` is ``0x80`` for strings and ``0xc0`` for lists.
    """
    if length <= MAX_SHORT_LENGTH:
        return bytes([offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(length_bytes) > 8:
        raise EncodingError(f"payload too long for RLP: {length} bytes")
    return bytes([offset + MAX_SHORT_LENGTH + len(length_bytes)]) + length_bytes


def _encode_item(item: object) -> bytes:
    if isinstance(item, (bytes, bytearray, memoryview)):
        data = bytes(item)
        if len(data) == 1 and data[0] < SHORT_STRING:
            return data
        return encode_length(len(data), SHORT_STRING) + data
    if isinstance(item, str):
        return _encode_item(item.encode("utf-8"))
    if isinstance(item, bool):
        # bool must be checked before int: encode as 0x01 / empty string.
        return _encode_item(b"\x01" if item else b"")
    if isinstance(item, int):
        if item < 0:
            raise EncodingError(f"cannot RLP-encode negative integer {item}")
        if item == 0:
            return _encode_item(b"")
        return _encode_item(item.to_bytes((item.bit_length() + 7) // 8, "big"))
    if isinstance(item, (list, tuple)):
        payload = b"".join(_encode_item(sub) for sub in item)
        return encode_length(len(payload), SHORT_LIST) + payload
    # Serializable objects carry their own sedes.
    serialize = getattr(item, "serialize_rlp", None)
    if serialize is not None:
        return _encode_item(serialize())
    raise EncodingError(f"cannot RLP-encode object of type {type(item).__name__}")


def encode(item: object) -> bytes:
    """RLP-encode ``item``.

    Accepts bytes-likes, ``str`` (UTF-8), non-negative ``int`` (big-endian,
    minimal), ``bool``, nested lists/tuples of the above, and any object with
    a ``serialize_rlp()`` method (see :class:`repro.rlp.sedes.Serializable`).
    """
    return _encode_item(item)


def _decode_length(data: bytes, pos: int) -> tuple[int, int, bool]:
    """Return ``(payload_offset, payload_length, is_list)`` for item at ``pos``."""
    if pos >= len(data):
        raise DecodingError("unexpected end of input")
    prefix = data[pos]
    if prefix < SHORT_STRING:
        return pos, 1, False
    if prefix <= LONG_STRING:
        length = prefix - SHORT_STRING
        if length == 1 and pos + 1 < len(data) and data[pos + 1] < SHORT_STRING:
            raise DecodingError("single byte below 0x80 must encode itself")
        return pos + 1, length, False
    if prefix < SHORT_LIST:
        length_size = prefix - LONG_STRING
        length = _read_long_length(data, pos + 1, length_size)
        return pos + 1 + length_size, length, False
    if prefix <= LONG_LIST:
        return pos + 1, prefix - SHORT_LIST, True
    length_size = prefix - LONG_LIST
    length = _read_long_length(data, pos + 1, length_size)
    return pos + 1 + length_size, length, True


def _read_long_length(data: bytes, pos: int, size: int) -> int:
    if pos + size > len(data):
        raise DecodingError("length prefix extends past end of input")
    raw_len = data[pos : pos + size]
    if raw_len[0] == 0:
        raise DecodingError("length prefix has leading zero byte")
    length = int.from_bytes(raw_len, "big")
    if length <= MAX_SHORT_LENGTH:
        raise DecodingError("long length form used for short payload")
    return length


def _decode_item(data: bytes, pos: int) -> tuple[RLPItem, int]:
    offset, length, is_list = _decode_length(data, pos)
    end = offset + length
    if end > len(data):
        raise DecodingError("payload extends past end of input")
    if not is_list:
        return data[offset:end], end
    items: list[RLPItem] = []
    cursor = offset
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        if cursor > end:
            raise DecodingError("list item extends past end of list payload")
        items.append(item)
    return items, end


def decode(data: bytes, strict: bool = True) -> RLPItem:
    """Decode one RLP item from ``data``.

    With ``strict=True`` (default) trailing bytes raise
    :class:`~repro.errors.DecodingError`.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise DecodingError(f"RLP input must be bytes, got {type(data).__name__}")
    data = bytes(data)
    if not data:
        raise DecodingError("cannot decode empty byte string")
    item, end = _decode_item(data, 0)
    if strict and end != len(data):
        raise DecodingError(f"{len(data) - end} trailing bytes after RLP item")
    return item


def decode_lazy(data: bytes) -> tuple[RLPItem, int]:
    """Decode one RLP item and also return how many bytes it consumed."""
    if not data:
        raise DecodingError("cannot decode empty byte string")
    return _decode_item(bytes(data), 0)


def iter_encode(items: Iterable[object]) -> bytes:
    """Encode ``items`` as an RLP list without materialising the list twice."""
    payload = b"".join(_encode_item(item) for item in items)
    return encode_length(len(payload), SHORT_LIST) + payload


def encoded_as_list(data: bytes) -> bool:
    """Return True if ``data`` starts with a list prefix."""
    if not data:
        raise DecodingError("cannot inspect empty byte string")
    return data[0] >= SHORT_LIST


def flatten_lengths(items: Sequence[RLPItem]) -> int:
    """Total number of leaf byte strings in a decoded structure (diagnostics)."""
    total = 0
    for item in items:
        if isinstance(item, list):
            total += flatten_lengths(item)
        else:
            total += 1
    return total
