"""A live Ethereum-protocol node over real sockets.

``FullNode`` glues the whole from-scratch stack together: discv4 discovery
on UDP, RLPx-encrypted TCP with DEVp2p session establishment, the eth
STATUS handshake, GET_BLOCK_HEADERS service from a real header chain, and a
Geth-style maximum-peer limit that answers extra dials with Too-many-peers
— everything NodeFinder needs a counterparty to do.

Integration tests and the examples run small localhost networks of these
nodes and crawl them with :mod:`repro.nodefinder.wire`, exercising every
byte of the protocol implementation end to end.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Optional

from repro.chain.chain import HeaderChain
from repro.chain.genesis import mainnet_genesis
from repro.crypto.keys import PrivateKey
from repro.devp2p.messages import (
    Capability,
    DisconnectMessage,
    DisconnectReason,
    HelloMessage,
)
from repro.devp2p.peer import DevP2PPeer
from repro.discovery.enode import ENode
from repro.discovery.protocol import DiscoveryService
from repro.errors import HandshakeError, PeerDisconnected, ProtocolError, ReproError
from repro.ethproto import messages as eth
from repro.resilience.chaos import ChaosConfig, ChaosStreamReader
from repro.rlpx.session import accept_session
from repro.telemetry import NULL_TELEMETRY, Telemetry

logger = logging.getLogger(__name__)


@dataclass
class FullNodeConfig:
    """Behaviour knobs for one live node."""

    client_id: str = "Geth/v1.7.3-stable-repro/linux-amd64/go1.9.2"
    network_id: int = 1
    protocol_version: int = 63
    max_peers: int = 25
    serve_headers: bool = True
    #: send DISCONNECT(Too many peers) when at capacity, like real clients
    enforce_peer_limit: bool = True


class FullNode:
    """One live node: UDP discovery + TCP eth service."""

    def __init__(
        self,
        private_key: PrivateKey | None = None,
        chain: HeaderChain | None = None,
        config: FullNodeConfig | None = None,
        host: str = "127.0.0.1",
        chaos: ChaosConfig | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self.private_key = private_key or PrivateKey.generate()
        self.chain = chain if chain is not None else HeaderChain(mainnet_genesis())
        self.config = config or FullNodeConfig()
        self.host = host
        #: fault injection on the node's *inbound* read path — a simnet or
        #: test network can make this node misbehave (stall, reset, send
        #: garbage) toward whoever dials it
        self.chaos = chaos
        self.telemetry = telemetry
        self.discovery: Optional[DiscoveryService] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.tcp_port = 0
        self.peers: dict[bytes, DevP2PPeer] = {}
        self.stats = {
            "inbound_connections": 0,
            "hellos": 0,
            "statuses": 0,
            "too_many_peers_sent": 0,
            "headers_served": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self, bootstrap: list[ENode] = ()) -> "FullNode":
        """Bind UDP discovery and the TCP listener."""
        self.discovery = DiscoveryService(
            self.private_key,
            host=self.host,
            bootstrap_nodes=list(bootstrap),
            telemetry=self.telemetry,
        )
        await self.discovery.listen()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.tcp_port = self._server.sockets[0].getsockname()[1]
        self.discovery.tcp_port = self.tcp_port
        return self

    async def stop(self) -> None:
        for peer in list(self.peers.values()):
            peer.abort()
        self.peers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.discovery is not None:
            self.discovery.close()

    @property
    def node_id(self) -> bytes:
        return self.private_key.public_key.to_bytes()

    @property
    def enode(self) -> ENode:
        return ENode(
            node_id=self.node_id,
            ip=self.host,
            udp_port=self.discovery.port if self.discovery else 0,
            tcp_port=self.tcp_port,
        )

    async def join(self, bootstrap: ENode) -> int:
        """Bond with a bootstrap node and run a self-lookup; returns the
        number of nodes discovered."""
        assert self.discovery is not None
        self.discovery.bootstrap_nodes.append(bootstrap)
        await self.discovery.bond(bootstrap)
        found = await self.discovery.self_lookup()
        return len(found)

    # -- hello / status ---------------------------------------------------------

    def our_hello(self) -> HelloMessage:
        return HelloMessage(
            version=5,
            client_id=self.config.client_id,
            capabilities=[Capability("eth", 62), Capability("eth", 63)],
            listen_port=self.tcp_port,
            node_id=self.node_id,
        )

    def our_status(self) -> eth.StatusMessage:
        return eth.StatusMessage(
            protocol_version=self.config.protocol_version,
            network_id=self.config.network_id,
            total_difficulty=self.chain.total_difficulty,
            best_hash=self.chain.best_hash,
            genesis_hash=self.chain.genesis_hash,
        )

    # -- inbound service -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["inbound_connections"] += 1
        self.telemetry.inbound.labels(phase="accepted").inc()
        self.telemetry.emit("inbound", phase="accepted")
        if self.chaos is not None:
            reader = ChaosStreamReader(reader, self.chaos)  # type: ignore[assignment]
        try:
            session = await accept_session(reader, writer, self.private_key)
        except HandshakeError:
            return
        peer = DevP2PPeer(session, self.our_hello())
        try:
            await peer.handshake()
            self.stats["hellos"] += 1
            self.telemetry.inbound.labels(phase="hello").inc()
            self.telemetry.emit(
                "inbound",
                phase="hello",
                node_id=peer.remote_node_id.hex() if peer.remote_node_id else None,
            )
            if (
                self.config.enforce_peer_limit
                and len(self.peers) >= self.config.max_peers
            ):
                self.stats["too_many_peers_sent"] += 1
                self.telemetry.inbound.labels(phase="too-many-peers").inc()
                await self._disconnect_lingering(peer, DisconnectReason.TOO_MANY_PEERS)
                return
            if peer.negotiated("eth") is None:
                await peer.disconnect(DisconnectReason.USELESS_PEER)
                return
            self.peers[peer.remote_node_id] = peer
            await self._serve_eth(peer)
        except (PeerDisconnected, ProtocolError, ReproError):
            pass
        except (ConnectionError, OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:  # reprolint: disable=ASYNC-CANCEL
            # server shutting down mid-session: close quietly.  Re-raising
            # from a start_server callback is noisy on 3.11 — the streams
            # machinery retrieves task.exception() without a cancelled()
            # guard and logs "Exception in callback" for every cancelled
            # handler (fixed upstream in 3.12).
            pass
        finally:
            self.peers.pop(peer.remote_node_id, None)
            peer.abort()

    async def _disconnect_lingering(
        self, peer: DevP2PPeer, reason: DisconnectReason
    ) -> None:
        """Send DISCONNECT but keep the socket open briefly so the remote
        can read the reason before seeing EOF (what real clients do)."""
        try:
            message = DisconnectMessage(reason=int(reason)).encode()
            await peer.session.send_message(0x01, message)
            await asyncio.sleep(0.25)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            peer.abort()

    async def _serve_eth(self, peer: DevP2PPeer) -> None:
        """STATUS exchange, then answer header queries until disconnect."""
        await peer.send_subprotocol("eth", eth.STATUS, self.our_status().encode())
        while True:
            name, code, payload = await peer.read_subprotocol()
            if name != "eth":
                continue
            if code == eth.STATUS:
                self.stats["statuses"] += 1
                self.telemetry.inbound.labels(phase="status").inc()
                remote = eth.StatusMessage.decode(payload)
                if not remote.same_chain_as(self.our_status()):
                    await peer.disconnect(DisconnectReason.USELESS_PEER)
                    return
            elif code == eth.GET_BLOCK_HEADERS and self.config.serve_headers:
                request = eth.GetBlockHeadersMessage.decode(payload)
                headers = self.chain.get_block_headers(
                    request.origin,
                    request.amount,
                    request.skip,
                    bool(request.reverse),
                )
                self.stats["headers_served"] += len(headers)
                self.telemetry.headers_served.inc(len(headers))
                answer = eth.BlockHeadersMessage.from_headers(headers)
                await peer.send_subprotocol("eth", eth.BLOCK_HEADERS, answer.encode())
            elif code == eth.GET_BLOCK_BODIES:
                await peer.send_subprotocol(
                    "eth", eth.BLOCK_BODIES, eth.BlockBodiesMessage(bodies=[]).encode()
                )
            elif code == eth.GET_RECEIPTS:
                # empty-block chain: every receipt list is empty
                request = eth.GetReceiptsMessage.decode(payload)
                answer = eth.ReceiptsMessage(receipts=[[] for _ in request.hashes])
                await peer.send_subprotocol("eth", eth.RECEIPTS, answer.encode())
            elif code == eth.GET_NODE_DATA:
                request = eth.GetNodeDataMessage.decode(payload)
                # serve opaque state chunks keyed by the requested roots
                answer = eth.NodeDataMessage(
                    values=[b"state:" + h for h in request.hashes]
                )
                await peer.send_subprotocol("eth", eth.NODE_DATA, answer.encode())
            # everything else (TRANSACTIONS etc.) is accepted silently


async def start_localhost_network(
    count: int,
    blocks: int = 32,
    config: FullNodeConfig | None = None,
    chaos: ChaosConfig | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> list[FullNode]:
    """Start ``count`` nodes sharing one mined chain, discovery-bonded in a
    star around the first node (the bootstrap).

    With ``chaos``, every node's inbound read path runs under the same
    fault-injection config — a whole misbehaving network in one call.
    ``telemetry`` (one shared facade) makes the served side observable too.
    """
    chain = HeaderChain(mainnet_genesis())
    chain.mine(blocks)
    nodes = []
    for index in range(count):
        node = FullNode(
            PrivateKey(10_000 + index),
            chain=chain,
            config=config,
            chaos=chaos,
            telemetry=telemetry,
        )
        await node.start()
        nodes.append(node)
    bootstrap = nodes[0].enode
    for node in nodes[1:]:
        await node.join(bootstrap)
    return nodes
