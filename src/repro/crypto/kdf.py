"""NIST SP 800-56 concatenation KDF, as used by Geth's ECIES.

Derives symmetric key material from an ECDH shared secret:
``K = SHA256(counter_1 || Z || s1) || SHA256(counter_2 || Z || s1) || ...``
with a 32-bit big-endian counter starting at 1.
"""

from __future__ import annotations

import hashlib

from repro.errors import CryptoError


def concat_kdf(shared_secret: bytes, length: int, shared_info: bytes = b"") -> bytes:
    """Derive ``length`` bytes of key material from ``shared_secret``."""
    if length <= 0:
        raise CryptoError("KDF output length must be positive")
    if length > 32 * 0xFFFFFFFF:
        raise CryptoError("KDF output length too large")
    output = bytearray()
    counter = 1
    while len(output) < length:
        digest = hashlib.sha256(
            counter.to_bytes(4, "big") + shared_secret + shared_info
        ).digest()
        output += digest
        counter += 1
    return bytes(output[:length])
