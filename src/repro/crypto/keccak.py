"""Keccak-256 (the pre-NIST variant used by Ethereum).

Ethereum uses the original Keccak submission with multi-rate padding byte
``0x01``, *not* FIPS-202 SHA3-256 (padding ``0x06``) — the two differ on
every input, which is why ``hashlib.sha3_256`` cannot be used.  This module
implements the Keccak-f[1600] permutation and a streaming sponge.

RLPx depends on Keccak-256 in four places: the discovery distance metric
(hash of the 512-bit node ID), discv4 packet hashes, the RLPx frame MAC
(a raw Keccak sponge used as a running MAC), and block/genesis hashes.
"""

from __future__ import annotations

import struct

_MASK = (1 << 64) - 1

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets for the rho step, indexed x + 5*y.
_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)

# pi step destination: lane (x, y) moves to (y, 2x + 3y).  Precompute the
# source index for each destination index.
_PI_SOURCES = tuple(
    (x + 3 * y) % 5 + 5 * x for y in range(5) for x in range(5)
)


def _rol(value: int, shift: int) -> int:
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK


def keccak_f1600_reference(state: list[int]) -> list[int]:
    """Apply the 24-round Keccak-f[1600] permutation to 25 64-bit lanes.

    Readable spec-shaped implementation; production code routes through the
    unrolled variant (same function, generated) in :mod:`repro.crypto._keccak_f`.
    """
    a = state
    for rc in _ROUND_CONSTANTS:
        # theta
        c = [
            a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20]
            for x in range(5)
        ]
        d = [c[(x - 1) % 5] ^ _rol(c[(x + 1) % 5], 1) for x in range(5)]
        a = [a[i] ^ d[i % 5] for i in range(25)]
        # rho and pi combined
        b = [0] * 25
        for i in range(25):
            src = _PI_SOURCES[i]
            b[i] = _rol(a[src], _ROTATIONS[src])
        # chi
        a = [
            b[i] ^ ((~b[(i % 5 + 1) % 5 + 5 * (i // 5)]) & _MASK
                    & b[(i % 5 + 2) % 5 + 5 * (i // 5)])
            for i in range(25)
        ]
        # iota
        a[0] ^= rc
    return a


from repro.crypto._keccak_f import HAVE_BATCH as _HAVE_BATCH  # noqa: E402
from repro.crypto._keccak_f import keccak_f1600_batch  # noqa: E402
from repro.crypto._keccak_f import keccak_f1600_unrolled as keccak_f1600  # noqa: E402


class KeccakSponge:
    """Streaming Keccak sponge with configurable rate and padding.

    The RLPx frame MAC (:mod:`repro.rlpx.frame`) uses this directly as a
    never-finalised running hash, updating and snapshotting digests, so the
    sponge supports both incremental absorption and copy().
    """

    def __init__(self, rate_bytes: int, output_bytes: int, pad_byte: int = 0x01):
        if rate_bytes % 8 != 0 or not 0 < rate_bytes < 200:
            raise ValueError(f"invalid sponge rate: {rate_bytes}")
        self.rate = rate_bytes
        self.output_bytes = output_bytes
        self.pad_byte = pad_byte
        self._state = [0] * 25
        self._buffer = b""

    def copy(self) -> "KeccakSponge":
        clone = KeccakSponge(self.rate, self.output_bytes, self.pad_byte)
        clone._state = list(self._state)
        clone._buffer = self._buffer
        return clone

    def update(self, data: bytes) -> "KeccakSponge":
        self._buffer += bytes(data)
        while len(self._buffer) >= self.rate:
            block, self._buffer = self._buffer[: self.rate], self._buffer[self.rate :]
            self._absorb(block)
        return self

    def _absorb(self, block: bytes) -> None:
        state = self._state
        for i, lane in enumerate(struct.unpack(self._lane_fmt, block)):
            state[i] ^= lane
        self._state = keccak_f1600(state)

    @property
    def _lane_fmt(self) -> str:
        return f"<{self.rate // 8}Q"

    def digest(self) -> bytes:
        """Return the digest of everything absorbed so far (non-destructive)."""
        pad_len = self.rate - len(self._buffer) % self.rate
        if pad_len == 1:
            padding = bytes([self.pad_byte ^ 0x80])
        else:
            padding = bytes([self.pad_byte]) + b"\x00" * (pad_len - 2) + b"\x80"
        pending = self._buffer + padding
        state = list(self._state)
        lane_fmt = self._lane_fmt
        lanes_per_block = self.rate // 8
        for offset in range(0, len(pending), self.rate):
            for i, lane in enumerate(
                struct.unpack_from(lane_fmt, pending, offset)
            ):
                state[i] ^= lane
            state = keccak_f1600(state)
        out = bytearray()
        while len(out) < self.output_bytes:
            out += struct.pack(lane_fmt, *state[:lanes_per_block])
            if len(out) < self.output_bytes:
                state = keccak_f1600(state)
        return bytes(out[: self.output_bytes])

    def hexdigest(self) -> str:
        return self.digest().hex()


class Keccak256(KeccakSponge):
    """Keccak-256: rate 136 bytes, 32-byte output, padding ``0x01``."""

    def __init__(self, data: bytes = b"") -> None:
        super().__init__(rate_bytes=136, output_bytes=32, pad_byte=0x01)
        if data:
            self.update(data)

    def copy(self) -> "Keccak256":
        clone = Keccak256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        return clone


# Padding suffix for every single-block input length (rate 136, pad 0x01):
# append 0x01, zero-fill to the rate, XOR 0x80 into the final byte.  At
# length 135 the pad byte and the 0x80 domain bit share one byte (0x81).
_PAD_136 = tuple(
    b"\x81" if n == 135 else b"\x01" + b"\x00" * (134 - n) + b"\x80"
    for n in range(136)
)
_ZERO_CAPACITY = [0] * 8  # lanes 17..24 (the 512-bit capacity) start zero


def keccak256(data: bytes) -> bytes:
    """One-shot Keccak-256 digest of ``data``.

    Inputs under one rate block (136 bytes) — node-ID hashes, distance
    targets, synthetic block hashes: every hash on the simulation's hot
    path — skip the streaming sponge: pad, one permutation, pack.
    """
    size = len(data)
    if size < 136:
        state = list(struct.unpack("<17Q", data + _PAD_136[size]))
        state += _ZERO_CAPACITY
        state = keccak_f1600(state)
        return struct.pack("<4Q", state[0], state[1], state[2], state[3])
    return Keccak256(data).digest()


def keccak256_batch(payloads: list[bytes]) -> list[bytes]:
    """Keccak-256 over many short messages in one vectorised permutation.

    Amortises the pure-python round loop across the whole batch via the
    numpy-backed :func:`keccak_f1600_batch` — the bulk memo warm-up path
    (synthetic-chain hashes).  Falls back to per-message :func:`keccak256`
    when numpy is unavailable or any payload spans more than one block;
    results are byte-identical either way.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    if not _HAVE_BATCH or any(len(p) >= 136 for p in payloads):
        return [keccak256(p) for p in payloads]
    import numpy as np

    count = len(payloads)
    blocks = b"".join(p + _PAD_136[len(p)] for p in payloads)
    lanes = np.frombuffer(blocks, dtype="<u8").reshape(count, 17)
    state = [lanes[:, i].astype(np.uint64, copy=True) for i in range(17)]
    state += [np.zeros(count, dtype=np.uint64) for _ in range(8)]
    state = keccak_f1600_batch(state)
    out = np.empty((count, 4), dtype="<u8")
    for i in range(4):
        out[:, i] = state[i]
    raw = out.tobytes()
    return [raw[i * 32 : (i + 1) * 32] for i in range(count)]


def keccak512(data: bytes) -> bytes:
    """One-shot Keccak-512 digest (rate 72); used by some DHT variants."""
    return KeccakSponge(rate_bytes=72, output_bytes=64).update(data).digest()
