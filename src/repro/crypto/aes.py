"""AES block cipher (128/192/256) with CTR and single-block ECB modes.

The RLPx transport needs exactly two AES constructions:

* **AES-CTR** as the frame body/header cipher and the ECIES bulk cipher;
* **single-block AES-ECB** (AES-256) inside the frame MAC construction,
  which encrypts the running egress/ingress MAC digest.

This is a table-driven implementation of FIPS 197.  It is deliberately
simple rather than constant-time: the threat model of a measurement
reproduction is correctness, not side channels, and tests validate it
against the FIPS 197 / NIST SP 800-38A vectors.
"""

from __future__ import annotations

from repro.errors import CryptoError

_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d8311504c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f8453d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa851a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d197360814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df8ca1890dbfe6426841992d0fb054bb16"
)

_INV_SBOX = bytes(256)
_inv = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _inv[_v] = _i
_INV_SBOX = bytes(_inv)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


# Precompute GF(2^8) multiplication tables for MixColumns coefficients.
_MUL = {}
for _coef in (1, 2, 3, 9, 11, 13, 14):
    table = bytearray(256)
    for _x in range(256):
        result, a, b = 0, _x, _coef
        while b:
            if b & 1:
                result ^= a
            a = _xtime(a)
            b >>= 1
        table[_x] = result
    _MUL[_coef] = bytes(table)


class AES:
    """The AES block cipher for a fixed key; 16-byte blocks."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[bytes]:
        nk = len(key) // 4
        words = [key[4 * i : 4 * i + 4] for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = bytes(_SBOX[b] for b in temp)
                temp = bytes([temp[0] ^ _RCON[i // nk - 1]]) + temp[1:]
            elif nk > 6 and i % nk == 4:
                temp = bytes(_SBOX[b] for b in temp)
            words.append(bytes(a ^ b for a, b in zip(words[i - nk], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(self.rounds + 1)]

    @staticmethod
    def _add_round_key(state: bytearray, round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: bytearray, box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        # state is column-major: byte (row, col) at index 4*col + row.
        for row in range(1, 4):
            column = [state[4 * col + row] for col in range(4)]
            column = column[row:] + column[:row]
            for col in range(4):
                state[4 * col + row] = column[col]

    @staticmethod
    def _inv_shift_rows(state: bytearray) -> None:
        for row in range(1, 4):
            column = [state[4 * col + row] for col in range(4)]
            column = column[-row:] + column[:-row]
            for col in range(4):
                state[4 * col + row] = column[col]

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        m2, m3 = _MUL[2], _MUL[3]
        for col in range(4):
            i = 4 * col
            a0, a1, a2, a3 = state[i : i + 4]
            state[i] = m2[a0] ^ m3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
            state[i + 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]

    @staticmethod
    def _inv_mix_columns(state: bytearray) -> None:
        m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        for col in range(4):
            i = 4 * col
            a0, a1, a2, a3 = state[i : i + 4]
            state[i] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            state[i + 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            state[i + 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            state[i + 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = bytearray(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = bytearray(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)


class AESCTR:
    """AES in counter mode with a streaming interface.

    Encryption and decryption are the same operation; the object keeps its
    keystream position so successive calls continue the stream, matching how
    the RLPx frame ciphers are used.
    """

    def __init__(self, key: bytes, initial_counter: bytes) -> None:
        if len(initial_counter) != 16:
            raise CryptoError("CTR counter block must be 16 bytes")
        self._aes = AES(key)
        self._counter = int.from_bytes(initial_counter, "big")
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data``, advancing the keystream."""
        while len(self._keystream) < len(data):
            block = self._counter.to_bytes(16, "big")
            self._counter = (self._counter + 1) % (1 << 128)
            self._keystream += self._aes.encrypt_block(block)
        out = bytes(a ^ b for a, b in zip(data, self._keystream))
        self._keystream = self._keystream[len(data):]
        return out


def aes_ctr(key: bytes, counter: bytes, data: bytes) -> bytes:
    """One-shot AES-CTR (used by ECIES, where the IV is the counter)."""
    return AESCTR(key, counter).process(data)
