"""Cryptographic primitives for the Ethereum network stack, from scratch.

RLPx node identity and transport security rest on four primitives, all
implemented here in pure Python:

* Keccak-256 (:mod:`repro.crypto.keccak`) — node-ID hashing for the Kademlia
  distance metric, packet hashes, and frame MACs;
* secp256k1 (:mod:`repro.crypto.secp256k1`) — node keys, ECDSA with public
  key recovery (discv4 packets), and ECDH (handshake secrets);
* AES (:mod:`repro.crypto.aes`) — ECIES bulk cipher and RLPx frame cipher;
* ECIES (:mod:`repro.crypto.ecies`) — the asymmetric envelope protecting the
  RLPx auth/ack handshake, with NIST SP 800-56 concatenation KDF
  (:mod:`repro.crypto.kdf`).

:mod:`repro.crypto.keys` wraps these in ergonomic key/signature objects.
"""

from repro.crypto.keccak import Keccak256, keccak256
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, Signature
from repro.crypto.ecies import ecies_decrypt, ecies_encrypt

__all__ = [
    "Keccak256",
    "keccak256",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "ecies_encrypt",
    "ecies_decrypt",
]
