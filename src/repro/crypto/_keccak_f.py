"""Unrolled Keccak-f[1600] permutation.

The readable round-loop implementation lives in :mod:`repro.crypto.keccak`;
this module generates a fully unrolled permutation function at import time
(25 lanes held in locals, all five steps inlined per round), which is ~6x
faster in CPython and keeps the frame-MAC and distance-metric paths usable
at simulation scale.  The generator mirrors the spec steps directly, so the
unrolled code stays auditable; tests assert it matches the loop version on
random states.
"""

from __future__ import annotations

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)


def _rot_expr(var: str, shift: int) -> str:
    if shift == 0:
        return var
    return f"((({var}) << {shift} | ({var}) >> {64 - shift}) & M)"


def _generate_source() -> str:
    lines = [
        "def keccak_f1600_unrolled(state):",
        "    M = 0xFFFFFFFFFFFFFFFF",
        "    (" + ", ".join(f"a{i}" for i in range(25)) + ") = state",
    ]
    for rc in _ROUND_CONSTANTS:
        # theta
        for x in range(5):
            lanes = " ^ ".join(f"a{x + 5 * y}" for y in range(5))
            lines.append(f"    c{x} = {lanes}")
        for x in range(5):
            rot = _rot_expr(f"c{(x + 1) % 5}", 1)
            lines.append(f"    d{x} = c{(x - 1) % 5} ^ {rot}")
        for i in range(25):
            lines.append(f"    a{i} ^= d{i % 5}")
        # rho + pi: b[dst] = rol(a[src], rot[src]) where src = x+3y mod 5 + 5x
        for y in range(5):
            for x in range(5):
                dst = x + 5 * y
                src = (x + 3 * y) % 5 + 5 * x
                lines.append(f"    b{dst} = {_rot_expr(f'a{src}', _ROTATIONS[src])}")
        # chi — for 0 <= b < 2**64, (~b) & M == b ^ M in one bigint op
        for y in range(5):
            for x in range(5):
                i = x + 5 * y
                i1 = (x + 1) % 5 + 5 * y
                i2 = (x + 2) % 5 + 5 * y
                lines.append(f"    a{i} = b{i} ^ ((b{i1} ^ M) & b{i2})")
        # iota
        lines.append(f"    a0 ^= {rc:#x}")
    lines.append("    return [" + ", ".join(f"a{i}" for i in range(25)) + "]")
    return "\n".join(lines)


_namespace: dict = {}
exec(_generate_source(), _namespace)  # noqa: S102 - code generated from constants above
keccak_f1600_unrolled = _namespace["keccak_f1600_unrolled"]


# -- batched permutation (numpy) ---------------------------------------------

try:  # numpy is optional at runtime: callers fall back to the scalar path
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

HAVE_BATCH = _np is not None


def _rol_batch(lanes, shift: int):
    if shift == 0:
        return lanes
    return (lanes << _np.uint64(shift)) | (lanes >> _np.uint64(64 - shift))


def keccak_f1600_batch(state):
    """The permutation over N states at once: 25 uint64 arrays of shape (N,).

    One python-level round loop regardless of N — the per-message cost is
    a handful of vector ops, which is what makes bulk memo warm-ups (e.g.
    the synthetic-chain hash cache) ~50x cheaper than hashing one by one.
    Lane order and step structure mirror the scalar generator above; tests
    assert equality against :func:`keccak_f1600_unrolled` lane-for-lane.
    """
    a = list(state)
    for rc in _ROUND_CONSTANTS:
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rol_batch(c[(x + 1) % 5], 1) for x in range(5)]
        a = [a[i] ^ d[i % 5] for i in range(25)]
        b = [None] * 25
        for y in range(5):
            for x in range(5):
                src = (x + 3 * y) % 5 + 5 * x
                b[x + 5 * y] = _rol_batch(a[src], _ROTATIONS[src])
        for y in range(5):
            for x in range(5):
                i = x + 5 * y
                a[i] = b[i] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y])
        a[0] = a[0] ^ _np.uint64(rc)
    return a
