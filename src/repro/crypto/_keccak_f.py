"""Unrolled Keccak-f[1600] permutation.

The readable round-loop implementation lives in :mod:`repro.crypto.keccak`;
this module generates a fully unrolled permutation function at import time
(25 lanes held in locals, all five steps inlined per round), which is ~6x
faster in CPython and keeps the frame-MAC and distance-metric paths usable
at simulation scale.  The generator mirrors the spec steps directly, so the
unrolled code stays auditable; tests assert it matches the loop version on
random states.
"""

from __future__ import annotations

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)


def _rot_expr(var: str, shift: int) -> str:
    if shift == 0:
        return var
    return f"((({var}) << {shift} | ({var}) >> {64 - shift}) & M)"


def _generate_source() -> str:
    lines = [
        "def keccak_f1600_unrolled(state):",
        "    M = 0xFFFFFFFFFFFFFFFF",
        "    (" + ", ".join(f"a{i}" for i in range(25)) + ") = state",
    ]
    for rc in _ROUND_CONSTANTS:
        # theta
        for x in range(5):
            lanes = " ^ ".join(f"a{x + 5 * y}" for y in range(5))
            lines.append(f"    c{x} = {lanes}")
        for x in range(5):
            rot = _rot_expr(f"c{(x + 1) % 5}", 1)
            lines.append(f"    d{x} = c{(x - 1) % 5} ^ {rot}")
        for i in range(25):
            lines.append(f"    a{i} ^= d{i % 5}")
        # rho + pi: b[dst] = rol(a[src], rot[src]) where src = x+3y mod 5 + 5x
        for y in range(5):
            for x in range(5):
                dst = x + 5 * y
                src = (x + 3 * y) % 5 + 5 * x
                lines.append(f"    b{dst} = {_rot_expr(f'a{src}', _ROTATIONS[src])}")
        # chi
        for y in range(5):
            for x in range(5):
                i = x + 5 * y
                i1 = (x + 1) % 5 + 5 * y
                i2 = (x + 2) % 5 + 5 * y
                lines.append(f"    a{i} = b{i} ^ ((~b{i1}) & M & b{i2})")
        # iota
        lines.append(f"    a0 ^= {rc:#x}")
    lines.append("    return [" + ", ".join(f"a{i}" for i in range(25)) + "]")
    return "\n".join(lines)


_namespace: dict = {}
exec(_generate_source(), _namespace)  # noqa: S102 - code generated from constants above
keccak_f1600_unrolled = _namespace["keccak_f1600_unrolled"]
