"""Key and signature objects wrapping the raw secp256k1 arithmetic.

An RLPx node's identity *is* its secp256k1 key pair: the 64-byte uncompressed
public key (without the ``0x04`` prefix) is the node ID that appears in enode
URLs, discovery packets, and the Kademlia distance metric.
"""

from __future__ import annotations

import secrets

from repro.crypto import secp256k1
from repro.crypto.keccak import keccak256
from repro.errors import InvalidPrivateKey, InvalidSignature


class Signature:
    """A recoverable ECDSA signature (65 bytes: r || s || v)."""

    __slots__ = ("_raw",)

    def __init__(self, raw: secp256k1.RawSignature) -> None:
        self._raw = raw

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        return cls(secp256k1.RawSignature.from_bytes(data))

    @property
    def r(self) -> int:
        return self._raw.r

    @property
    def s(self) -> int:
        return self._raw.s

    @property
    def v(self) -> int:
        return self._raw.v

    def to_bytes(self) -> bytes:
        return self._raw.to_bytes()

    def recover(self, digest: bytes) -> "PublicKey":
        """Recover the signer's public key from a 32-byte digest."""
        return PublicKey(secp256k1.recover_digest(digest, self._raw))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._raw == other._raw

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"Signature({self.to_bytes().hex()[:16]}...)"


class PublicKey:
    """A secp256k1 public key; doubles as the RLPx node ID."""

    __slots__ = ("_point",)

    def __init__(self, point: secp256k1.AffinePoint) -> None:
        if point.is_infinity or not secp256k1.is_on_curve(point):
            raise InvalidSignature("invalid public key point")
        self._point = point

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Accepts 64-byte node IDs, or SEC1 compressed/uncompressed points."""
        return cls(secp256k1.decode_point(data))

    @property
    def point(self) -> secp256k1.AffinePoint:
        return self._point

    def to_bytes(self) -> bytes:
        """The 64-byte node-ID encoding (X || Y, no prefix)."""
        return self._point.x.to_bytes(32, "big") + self._point.y.to_bytes(32, "big")

    def to_compressed_bytes(self) -> bytes:
        return secp256k1.encode_point(self._point, compressed=True)

    def to_sec1_bytes(self) -> bytes:
        """65-byte uncompressed SEC 1 encoding (0x04 prefix), as ECIES uses."""
        return secp256k1.encode_point(self._point, compressed=False)

    def keccak(self) -> bytes:
        """Keccak-256 of the node ID — the value RLPx measures distance on."""
        return keccak256(self.to_bytes())

    def verify(self, digest: bytes, signature: Signature) -> bool:
        return secp256k1.verify_digest(digest, signature._raw, self._point)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PublicKey):
            return NotImplemented
        return self._point == other._point

    def __hash__(self) -> int:
        return hash(self._point)

    def __repr__(self) -> str:
        return f"PublicKey({self.to_bytes().hex()[:16]}...)"


class PrivateKey:
    """A secp256k1 private key with signing and ECDH operations."""

    __slots__ = ("_secret", "_public")

    def __init__(self, secret: int) -> None:
        if not 1 <= secret < secp256k1.N:
            raise InvalidPrivateKey("private key scalar out of range")
        self._secret = secret
        self._public: PublicKey | None = None

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) != 32:
            raise InvalidPrivateKey(f"private key must be 32 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def generate(cls, rng: "secrets.SystemRandom | None" = None) -> "PrivateKey":
        """Generate a fresh random key (CSPRNG unless ``rng`` is supplied)."""
        if rng is None:
            while True:
                candidate = secrets.randbits(256)
                if 1 <= candidate < secp256k1.N:
                    return cls(candidate)
        while True:
            candidate = rng.getrandbits(256)
            if 1 <= candidate < secp256k1.N:
                return cls(candidate)

    @property
    def secret(self) -> int:
        return self._secret

    def to_bytes(self) -> bytes:
        return self._secret.to_bytes(32, "big")

    @property
    def public_key(self) -> PublicKey:
        if self._public is None:
            self._public = PublicKey(secp256k1.generator_multiply(self._secret))
        return self._public

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest (deterministic nonce, low-s, recoverable)."""
        return Signature(secp256k1.sign_digest(digest, self._secret))

    def ecdh(self, public_key: PublicKey) -> bytes:
        """32-byte ECDH shared secret with ``public_key``."""
        return secp256k1.ecdh(self._secret, public_key.point)

    def __repr__(self) -> str:
        return "PrivateKey(<redacted>)"


class KeyPair:
    """Convenience bundle of a node's private key and derived identity."""

    __slots__ = ("private_key",)

    def __init__(self, private_key: PrivateKey) -> None:
        self.private_key = private_key

    @classmethod
    def generate(cls) -> "KeyPair":
        return cls(PrivateKey.generate())

    @property
    def public_key(self) -> PublicKey:
        return self.private_key.public_key

    @property
    def node_id(self) -> bytes:
        """The 64-byte RLPx node ID."""
        return self.public_key.to_bytes()
