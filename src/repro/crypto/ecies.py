"""ECIES encryption as implemented by Geth (``crypto/ecies``).

The RLPx handshake wraps its auth and ack messages in ECIES:

1. generate an ephemeral secp256k1 key pair;
2. ``Z`` = ECDH(ephemeral secret, recipient public key) — 32-byte x-coord;
3. ``K`` = concatKDF(Z, 32); ``kE`` = K[:16], ``kM`` = SHA256(K[16:]);
4. ``c`` = AES-128-CTR(kE, iv, plaintext) with a random 16-byte IV;
5. ``d`` = HMAC-SHA256(kM, iv || c || shared_mac_data);
6. ciphertext = ``0x04 || ephemeral_pubkey(64) || iv || c || d``.

``shared_mac_data`` carries the EIP-8 size prefix during the handshake.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.crypto.aes import aes_ctr
from repro.crypto.kdf import concat_kdf
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import DecryptionError

#: bytes added by ECIES: 65 (pubkey) + 16 (IV) + 32 (HMAC tag)
ECIES_OVERHEAD = 65 + 16 + 32

_KEY_LEN = 16  # AES-128


def ecies_encrypt(
    plaintext: bytes,
    recipient: PublicKey,
    shared_mac_data: bytes = b"",
    ephemeral_key: PrivateKey | None = None,
    iv: bytes | None = None,
) -> bytes:
    """Encrypt ``plaintext`` to ``recipient``.

    ``ephemeral_key`` and ``iv`` may be pinned for deterministic tests; by
    default both are freshly random per message.
    """
    if ephemeral_key is None:
        ephemeral_key = PrivateKey.generate()
    if iv is None:
        iv = secrets.token_bytes(16)
    if len(iv) != 16:
        raise DecryptionError("ECIES IV must be 16 bytes")
    shared = ephemeral_key.ecdh(recipient)
    key_material = concat_kdf(shared, 2 * _KEY_LEN)
    enc_key = key_material[:_KEY_LEN]
    mac_key = hashlib.sha256(key_material[_KEY_LEN:]).digest()
    ciphertext = aes_ctr(enc_key, iv, plaintext)
    tag = hmac.new(mac_key, iv + ciphertext + shared_mac_data, hashlib.sha256).digest()
    return ephemeral_key.public_key.to_sec1_bytes() + iv + ciphertext + tag


def ecies_decrypt(
    message: bytes, private_key: PrivateKey, shared_mac_data: bytes = b""
) -> bytes:
    """Decrypt an ECIES message addressed to ``private_key``.

    Raises :class:`~repro.errors.DecryptionError` on malformed input or MAC
    mismatch.
    """
    if len(message) < ECIES_OVERHEAD:
        raise DecryptionError(
            f"ECIES message too short: {len(message)} < {ECIES_OVERHEAD}"
        )
    if message[0] != 0x04:
        raise DecryptionError("ECIES message must start with uncompressed point")
    try:
        ephemeral_public = PublicKey.from_bytes(message[:65])
    except Exception as exc:
        raise DecryptionError(f"bad ephemeral public key: {exc}") from exc
    iv = message[65:81]
    ciphertext = message[81:-32]
    tag = message[-32:]
    shared = private_key.ecdh(ephemeral_public)
    key_material = concat_kdf(shared, 2 * _KEY_LEN)
    enc_key = key_material[:_KEY_LEN]
    mac_key = hashlib.sha256(key_material[_KEY_LEN:]).digest()
    expected = hmac.new(
        mac_key, iv + ciphertext + shared_mac_data, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(tag, expected):
        raise DecryptionError("ECIES MAC mismatch")
    return aes_ctr(enc_key, iv, ciphertext)
