"""secp256k1 elliptic-curve arithmetic, ECDSA, and ECDH.

RLPx node IDs are uncompressed secp256k1 public keys (64 bytes), discv4
packets carry recoverable ECDSA signatures, and the ECIES handshake derives
shared secrets via ECDH — all implemented here over plain Python integers.

Curve: ``y^2 = x^3 + 7`` over GF(p), p = 2^256 - 2^32 - 977.
Point arithmetic uses Jacobian projective coordinates; signing uses the
deterministic nonce construction of RFC 6979 (HMAC-SHA256), as Geth does.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import NamedTuple

from repro.errors import InvalidPublicKey, InvalidPrivateKey, InvalidSignature

# Curve parameters (SEC 2).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

_HALF_N = N // 2


class AffinePoint(NamedTuple):
    """An affine curve point; ``None`` coordinates encode the point at infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None


INFINITY = AffinePoint(None, None)
GENERATOR = AffinePoint(GX, GY)


def is_on_curve(point: AffinePoint) -> bool:
    """Check the curve equation for an affine point."""
    if point.is_infinity:
        return True
    x, y = point.x, point.y
    return (y * y - x * x * x - B) % P == 0


# --- Jacobian arithmetic -------------------------------------------------
#
# A Jacobian point (X, Y, Z) represents affine (X/Z^2, Y/Z^3); it avoids a
# modular inverse per addition, which dominates pure-Python cost.

_Jacobian = tuple[int, int, int]

_J_INFINITY: _Jacobian = (0, 1, 0)


def _to_jacobian(point: AffinePoint) -> _Jacobian:
    if point.is_infinity:
        return _J_INFINITY
    return (point.x, point.y, 1)


def _from_jacobian(point: _Jacobian) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return INFINITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return AffinePoint(x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _j_double(point: _Jacobian) -> _Jacobian:
    x, y, z = point
    if z == 0 or y == 0:
        return _J_INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P  # a == 0 so no a*z^4 term
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _j_add(p: _Jacobian, q: _Jacobian) -> _Jacobian:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _J_INFINITY
        return _j_double(p)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def _j_multiply(point: _Jacobian, scalar: int) -> _Jacobian:
    scalar %= N
    if scalar == 0 or point[2] == 0:
        return _J_INFINITY
    result = _J_INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _j_add(result, addend)
        addend = _j_double(addend)
        scalar >>= 1
    return result


def point_add(p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Affine point addition."""
    return _from_jacobian(_j_add(_to_jacobian(p), _to_jacobian(q)))


def point_multiply(point: AffinePoint, scalar: int) -> AffinePoint:
    """Affine scalar multiplication ``scalar * point``."""
    return _from_jacobian(_j_multiply(_to_jacobian(point), scalar))


def point_negate(point: AffinePoint) -> AffinePoint:
    if point.is_infinity:
        return point
    return AffinePoint(point.x, (-point.y) % P)


def generator_multiply(scalar: int) -> AffinePoint:
    """``scalar * G``."""
    return point_multiply(GENERATOR, scalar)


# --- Encoding -------------------------------------------------------------

def encode_point(point: AffinePoint, compressed: bool = False) -> bytes:
    """SEC 1 point encoding (65-byte uncompressed or 33-byte compressed)."""
    if point.is_infinity:
        raise InvalidPublicKey("cannot encode point at infinity")
    if compressed:
        prefix = 0x02 | (point.y & 1)
        return bytes([prefix]) + point.x.to_bytes(32, "big")
    return b"\x04" + point.x.to_bytes(32, "big") + point.y.to_bytes(32, "big")


def decode_point(data: bytes) -> AffinePoint:
    """Decode a SEC 1 point (accepts compressed, uncompressed, and the raw
    64-byte X||Y form RLPx uses for node IDs)."""
    if len(data) == 64:
        data = b"\x04" + data
    if len(data) == 65 and data[0] == 0x04:
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:], "big")
        point = AffinePoint(x, y)
        if x >= P or y >= P or not is_on_curve(point):
            raise InvalidPublicKey("point not on curve")
        return point
    if len(data) == 33 and data[0] in (0x02, 0x03):
        x = int.from_bytes(data[1:], "big")
        if x >= P:
            raise InvalidPublicKey("x coordinate out of range")
        y = solve_y(x, data[0] & 1)
        return AffinePoint(x, y)
    raise InvalidPublicKey(f"cannot decode point from {len(data)} bytes")


def solve_y(x: int, parity: int) -> int:
    """Solve the curve equation for y with the given parity bit."""
    y_squared = (pow(x, 3, P) + B) % P
    y = pow(y_squared, (P + 1) // 4, P)
    if y * y % P != y_squared:
        raise InvalidPublicKey(f"no curve point with x={x:#x}")
    if y & 1 != parity:
        y = P - y
    return y


# --- ECDSA ----------------------------------------------------------------

class RawSignature(NamedTuple):
    """A recoverable ECDSA signature: (r, s, recovery id v in {0,1})."""

    r: int
    s: int
    v: int

    def to_bytes(self) -> bytes:
        """65-byte r || s || v encoding used by discv4 and the RLPx handshake."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big") + bytes([self.v])

    @classmethod
    def from_bytes(cls, data: bytes) -> "RawSignature":
        if len(data) != 65:
            raise InvalidSignature(f"signature must be 65 bytes, got {len(data)}")
        r = int.from_bytes(data[:32], "big")
        s = int.from_bytes(data[32:64], "big")
        v = data[64]
        if v >= 28:
            v -= 27
        if v not in (0, 1, 2, 3):
            raise InvalidSignature(f"invalid recovery id {data[64]}")
        return cls(r, s, v)


def _rfc6979_nonce(digest: bytes, private_key: int, extra: bytes = b"") -> int:
    """Deterministic nonce per RFC 6979 with HMAC-SHA256."""
    holen = 32
    x = private_key.to_bytes(32, "big")
    h1 = digest
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1 + extra, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1 + extra, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        nonce = int.from_bytes(v, "big")
        if 1 <= nonce < N:
            return nonce
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign_digest(digest: bytes, private_key: int) -> RawSignature:
    """Sign a 32-byte digest, returning a recoverable low-s signature."""
    if len(digest) != 32:
        raise InvalidSignature(f"digest must be 32 bytes, got {len(digest)}")
    if not 1 <= private_key < N:
        raise InvalidPrivateKey("private key out of range")
    z = int.from_bytes(digest, "big")
    attempt = 0
    while True:
        extra = attempt.to_bytes(4, "big") if attempt else b""
        k = _rfc6979_nonce(digest, private_key, extra)
        point = _from_jacobian(_j_multiply(_to_jacobian(GENERATOR), k))
        if point.is_infinity:
            attempt += 1
            continue
        r = point.x % N
        if r == 0:
            attempt += 1
            continue
        s = pow(k, N - 2, N) * (z + r * private_key) % N
        if s == 0:
            attempt += 1
            continue
        v = (point.y & 1) | (2 if point.x >= N else 0)
        if s > _HALF_N:
            s = N - s
            v ^= 1
        return RawSignature(r, s, v)


def verify_digest(digest: bytes, signature: RawSignature, public_key: AffinePoint) -> bool:
    """Verify ``signature`` over a 32-byte ``digest`` against ``public_key``."""
    if len(digest) != 32:
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < N and 1 <= s < N):
        return False
    if public_key.is_infinity or not is_on_curve(public_key):
        return False
    z = int.from_bytes(digest, "big")
    w = pow(s, N - 2, N)
    u1 = z * w % N
    u2 = r * w % N
    point = _from_jacobian(
        _j_add(
            _j_multiply(_to_jacobian(GENERATOR), u1),
            _j_multiply(_to_jacobian(public_key), u2),
        )
    )
    if point.is_infinity:
        return False
    return point.x % N == r


def recover_digest(digest: bytes, signature: RawSignature) -> AffinePoint:
    """Recover the signing public key from a recoverable signature.

    This is how discv4 learns the sender's node ID from a datagram.
    """
    if len(digest) != 32:
        raise InvalidSignature("digest must be 32 bytes")
    r, s, v = signature
    if not (1 <= r < N and 1 <= s < N):
        raise InvalidSignature("r or s out of range")
    x = r + N if v & 2 else r
    if x >= P:
        raise InvalidSignature("invalid x coordinate for recovery")
    try:
        y = solve_y(x, v & 1)
    except InvalidPublicKey as exc:
        raise InvalidSignature(str(exc)) from exc
    point_r = AffinePoint(x, y)
    z = int.from_bytes(digest, "big")
    r_inv = pow(r, N - 2, N)
    # Q = r^-1 (s*R - z*G)
    zg_x, zg_y, zg_z = _j_multiply(_to_jacobian(GENERATOR), z % N)
    neg_zg = (zg_x, (-zg_y) % P, zg_z)
    q = _from_jacobian(
        _j_multiply(_j_add(_j_multiply(_to_jacobian(point_r), s), neg_zg), r_inv)
    )
    if q.is_infinity or not is_on_curve(q):
        raise InvalidSignature("recovered point not on curve")
    return q


def ecdh(private_key: int, public_key: AffinePoint) -> bytes:
    """ECDH shared secret: the 32-byte x-coordinate of ``d * Q``.

    This matches Geth's ``ecies.GenerateShared`` (x-coordinate only).
    """
    if not 1 <= private_key < N:
        raise InvalidPrivateKey("private key out of range")
    if public_key.is_infinity or not is_on_curve(public_key):
        raise InvalidPublicKey("invalid public key for ECDH")
    shared = point_multiply(public_key, private_key)
    if shared.is_infinity:
        raise InvalidPublicKey("ECDH produced point at infinity")
    return shared.x.to_bytes(32, "big")
