"""Offline-install shim: `python setup.py develop` works without the
wheel package that `pip install -e .` needs for PEP 517 builds."""
from setuptools import setup

setup()
