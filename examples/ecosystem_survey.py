"""Survey a simulated DEVp2p ecosystem the way the paper surveyed the real one.

Builds a scaled-down 2018 Ethereum world (services, networks, clients,
churn, NATed nodes, abusive node-ID factories), runs a NodeFinder fleet
over it for a few simulated days, sanitises the data per §5.4, and prints
the ecosystem tables (3, 4, 5) plus the Figure 9 and §6.1 headline numbers
next to the paper's values.

Run:  python examples/ecosystem_survey.py  (~1 minute)
"""

from repro.analysis.clients import (
    client_share_table,
    stable_fraction,
    version_table,
)
from repro.analysis.ecosystem import network_stats, service_table, useless_fraction
from repro.analysis.render import format_table, side_by_side
from repro.datasets import reference
from repro.nodefinder.fleet import run_fleet
from repro.nodefinder.sanitize import sanitize
from repro.nodefinder.scanner import NodeFinderConfig
from repro.simnet.population import PopulationConfig
from repro.simnet.world import SimWorld, WorldConfig


def main() -> None:
    world = SimWorld(
        WorldConfig(
            population=PopulationConfig(total_nodes=1500, measurement_days=4.0, seed=7)
        )
    )
    fleet = run_fleet(
        world,
        instance_count=2,
        days=4.0,
        config=NodeFinderConfig(discovery_interval=45.0),
    )
    raw_db = fleet.merged_db
    db, report = sanitize(raw_db, fleet.own_node_ids())
    print(f"crawl: {len(raw_db)} node IDs seen, "
          f"{len(report.abusive_node_ids)} abusive removed "
          f"({report.abusive_fraction:.1%}; paper: {reference.ABUSIVE_FRACTION:.1%}) "
          f"from {len(report.abusive_ips)} IPs")
    print()
    print(format_table(
        "Table 3 — DEVp2p services",
        ["service", "count", "share"],
        service_table(db),
    ))
    print(side_by_side(
        dict((s, share) for s, _, share in service_table(db)).get("eth", 0.0),
        reference.TABLE3_SERVICES["eth"][1],
        "eth share of DEVp2p",
    ))
    print()
    mainnet = db.mainnet_nodes()
    print(format_table(
        "Table 4 — Mainnet clients",
        ["client", "count", "share"],
        client_share_table(mainnet),
    ))
    print()
    print(format_table(
        "Table 5 — top Geth versions",
        ["version", "channel", "count", "share"],
        version_table(mainnet, "geth", top=8),
    ))
    print(side_by_side(stable_fraction(mainnet, "geth"),
                       reference.GETH_STABLE_FRACTION, "Geth stable fraction"))
    print(side_by_side(stable_fraction(mainnet, "parity"),
                       reference.PARITY_STABLE_FRACTION, "Parity stable fraction"))
    print()
    stats = network_stats(db)
    print(f"Figure 9 — {stats.distinct_network_ids} network ids, "
          f"{stats.distinct_genesis_hashes} genesis hashes, "
          f"{stats.single_peer_networks} single-peer networks, "
          f"{stats.fake_mainnet_peers} fake-Mainnet-genesis peers")
    print(side_by_side(stats.mainnet_share, 0.55, "Mainnet share of eth STATUS nodes"))
    print(side_by_side(useless_fraction(db), reference.USELESS_PEER_FRACTION,
                       "useless-peer fraction (§6.1)"))


if __name__ == "__main__":
    main()
