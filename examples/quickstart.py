"""Quickstart: the Ethereum network stack from bytes to a live handshake.

Walks the layers bottom-up — RLP, Keccak, node identities, a discv4
exchange, and a full RLPx + DEVp2p + eth handshake between two live nodes
on localhost — all with this package's from-scratch implementations.

Run:  python examples/quickstart.py
"""

import asyncio

from repro.chain import HeaderChain, mainnet_genesis
from repro.crypto import PrivateKey, keccak256
from repro.discovery import geth_log_distance, parity_log_distance
from repro.fullnode import FullNode
from repro.nodefinder.wire import harvest
from repro.rlp import codec


def layer_1_rlp() -> None:
    print("== RLP: Ethereum's wire encoding")
    message = [b"eth", 63, [b"nested", b"lists"]]
    encoded = codec.encode(message)
    print(f"   {message!r}\n   -> {encoded.hex()}")
    assert codec.decode(encoded) == [b"eth", b"\x3f", [b"nested", b"lists"]]


def layer_2_identity() -> None:
    print("== Node identity: secp256k1 keys, Keccak-256 distance")
    alice, bob = PrivateKey.generate(), PrivateKey.generate()
    print(f"   alice node ID: {alice.public_key.to_bytes().hex()[:32]}...")
    distance = geth_log_distance(
        keccak256(alice.public_key.to_bytes()), keccak256(bob.public_key.to_bytes())
    )
    parity_view = parity_log_distance(
        keccak256(alice.public_key.to_bytes()), keccak256(bob.public_key.to_bytes())
    )
    print(f"   Geth log-distance alice<->bob: {distance} (Parity would say {parity_view})")


def layer_3_chain() -> None:
    print("== Chain: the real Mainnet genesis, validated headers")
    chain = HeaderChain(mainnet_genesis())
    print(f"   genesis hash: {chain.genesis_hash.hex()}")
    assert chain.genesis_hash.hex().startswith("d4e56740")
    chain.mine(8)
    print(f"   mined to height {chain.height}, TD {chain.total_difficulty}")


async def layer_4_live_handshake() -> None:
    print("== Live handshake: RLPx + DEVp2p + eth STATUS + DAO check")
    chain = HeaderChain(mainnet_genesis())
    chain.mine(16)
    node = FullNode(chain=chain)
    await node.start()
    try:
        result = await harvest(node.enode, PrivateKey.generate())
        print(f"   outcome:   {result.outcome.value}")
        print(f"   client:    {result.client_id}")
        print(f"   network:   {result.network_id}")
        print(f"   genesis:   {result.genesis_hash.hex()[:16]}...")
        print(f"   dao check: {result.dao_side} (chain is below the fork height)")
        print(f"   harvest took {result.duration * 1000:.0f} ms")
    finally:
        await node.stop()


def main() -> None:
    layer_1_rlp()
    layer_2_identity()
    layer_3_chain()
    asyncio.run(layer_4_live_handshake())
    print("quickstart complete")


if __name__ == "__main__":
    main()
