"""Crawl a live localhost network with the real NodeFinder harvest.

Starts a small network of full nodes (with real UDP discovery and
peer-limit enforcement), lets them discover each other, then crawls them
the way NodeFinder crawls the Internet: discv4 lookup for targets, one
three-exchange harvest per node, disconnect, record.

Run:  python examples/live_crawl.py
"""

import asyncio

from repro.crypto.keys import PrivateKey
from repro.discovery.protocol import DiscoveryService
from repro.fullnode import FullNodeConfig, start_localhost_network
from repro.nodefinder.wire import crawl_targets


async def main() -> None:
    nodes = await start_localhost_network(
        6,
        blocks=24,
        config=FullNodeConfig(max_peers=25),
    )
    print(f"started {len(nodes)} live nodes; bootstrap: {nodes[0].enode.short_id()}")
    try:
        # --- discovery: find the network the way NodeFinder does -----------
        scanner_key = PrivateKey.generate()
        scanner = DiscoveryService(scanner_key, bootstrap_nodes=[nodes[0].enode])
        await scanner.listen()
        await scanner.bond(nodes[0].enode)
        found = await scanner.self_lookup()
        print(f"discovery found {len(found)} nodes via the bootstrap")
        scanner.close()

        # --- harvest every discovered node ---------------------------------
        db = await crawl_targets(found, scanner_key)
        print(f"harvested {len(db)} nodes:")
        for entry in db:
            print(
                f"  {entry.node_id.hex()[:8]}  {entry.client_id:<44}  "
                f"net={entry.network_id}  sessions={entry.sessions}  "
                f"rtt={(entry.median_latency or 0) * 1000:.1f}ms"
            )
        statuses = len(db.nodes_with_status())
        print(f"{statuses}/{len(db)} gave STATUS; all on genesis "
              f"{next(iter(db)).genesis_hash.hex()[:12]}...")
    finally:
        for node in nodes:
            await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
