"""The Geth/Parity distance-metric bug (§6.3, Figure 11, Appendix A).

Reproduces the paper's Figure 11 Monte-Carlo (both metrics over random
node-ID pairs), verifies the Equation 1 relationship, and runs the
lookup-convergence experiment showing how a Parity-saturated network
degrades Geth's recursive FIND_NODE — the accidental-eclipse scenario.

Run:  python examples/distance_bug.py
"""

import random

from repro.analysis.distance import (
    simulate_distance_distribution,
    simulate_friction,
    simulate_lookup_convergence,
)
from repro.discovery.distance import geth_log_distance, parity_log_distance


def figure_11() -> None:
    print("== Figure 11: log-distance distribution over random node pairs")
    dist = simulate_distance_distribution(trials=20_000, hash_ids=False)
    print("   dist   Geth    Parity")
    for distance in range(196, 257, 4):
        geth_bar = "#" * int(200 * dist.geth.get(distance, 0) / dist.trials)
        parity_bar = "*" * int(200 * dist.parity.get(distance, 0) / dist.trials)
        print(f"   {distance:>4}  {geth_bar:<14} {parity_bar}")
    print(f"   Geth mode: {dist.geth_mode()} (paper: 256); "
          f"Parity mode: {dist.parity_mode()} (paper: ~224)")


def equation_1() -> None:
    print("== Equation 1: the metrics agree exactly on all-ones XOR patterns")
    zero = b"\x00" * 32
    for bits in (8, 64, 200, 256):
        other = ((1 << bits) - 1).to_bytes(32, "big")
        geth = geth_log_distance(zero, other)
        parity = parity_log_distance(zero, other)
        print(f"   xor = 2^{bits}-1: ld_G={geth} ld_P={parity} equal={geth == parity}")
    rng = random.Random(0)
    disagreements = sum(
        1
        for _ in range(2000)
        if geth_log_distance(a := rng.randbytes(32), b := rng.randbytes(32))
        != parity_log_distance(a, b)
    )
    print(f"   random pairs disagreeing: {disagreements / 2000:.1%} (almost always)")


def friction() -> None:
    print("== §6.3: FIND_NODE quality and lookup convergence")
    one_hop = simulate_friction()
    print(f"   one-hop improvement: geth {one_hop.geth_mean_improvement:.2f} bits, "
          f"parity {one_hop.parity_mean_improvement:.2f} bits")
    report = simulate_lookup_convergence(neighbors_per_node=100)
    for composition in ("geth", "mixed", "parity"):
        print(f"   {composition:>6} network: exact-hit {report.exact_hit[composition]:.0%}, "
              f"final gap {report.final_gap[composition]:.2f} bits")
    print("   (all-Parity networks stall farther from lookup targets — the")
    print("    'effectively useless peers' / accidental eclipse of §6.3)")


def main() -> None:
    figure_11()
    equation_1()
    friction()


if __name__ == "__main__":
    main()
